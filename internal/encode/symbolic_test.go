package encode_test

import (
	"context"
	"errors"
	"sort"
	"strings"
	"testing"

	"syrep/internal/encode"
	"syrep/internal/network"
	"syrep/internal/papernet"
	"syrep/internal/routing"
	"syrep/internal/verify"
)

// TestSymbolicFigure2 reproduces the paper's Figure 2 with the literal
// symbolic-failure encoding: exactly six perfectly 2-resilient orderings.
func TestSymbolicFigure2(t *testing.T) {
	n := papernet.Figure2()
	d := n.NodeByName("d")
	v1 := n.NodeByName("v1")
	r := routing.New(n, d)
	if err := r.PunchHole(n.Loopback(v1), v1, 3); err != nil {
		t.Fatal(err)
	}

	sym, err := encode.BuildSymbolic(context.Background(), r, 2, encode.Options{})
	if err != nil {
		t.Fatalf("BuildSymbolic: %v", err)
	}
	if got := sym.NumSolutions(); got != 6 {
		t.Errorf("NumSolutions = %v, want 6", got)
	}
	fillings := sym.Enumerate(0)
	if len(fillings) != 6 {
		t.Fatalf("Enumerate = %d fillings, want 6", len(fillings))
	}
	key := routing.Key{In: n.Loopback(v1), At: v1}
	seen := make(map[string]bool)
	for _, f := range fillings {
		var names []string
		for _, e := range f[key] {
			names = append(names, n.EdgeName(e))
		}
		seen[strings.Join(names, ",")] = true
	}
	want := []string{
		"e0,e1,e2", "e0,e2,e1", "e1,e0,e2", "e1,e2,e0", "e2,e0,e1", "e2,e1,e0",
	}
	var got []string
	for k := range seen {
		got = append(got, k)
	}
	sort.Strings(got)
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("fillings = %v, want all six permutations", got)
	}
	if sym.Iterations == 0 {
		t.Error("fixpoint iterations not recorded")
	}
}

// TestSymbolicAgreesWithScenarioEngine: on the running example repair, both
// engines must accept exactly the same set of hole fillings.
func TestSymbolicAgreesWithScenarioEngine(t *testing.T) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	punchSuspicious(t, n, r, 2)

	sym, err := encode.BuildSymbolic(ctx, r, 2, encode.Options{})
	if err != nil {
		t.Fatalf("BuildSymbolic: %v", err)
	}
	symFillings := sym.Enumerate(0)

	scenFillings, err := encode.Enumerate(ctx, r, 2, encode.Options{}, 0)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}

	symSet := fillingSet(symFillings)
	scenSet := fillingSet(scenFillings)
	if len(symSet) != len(scenSet) {
		t.Fatalf("engine disagreement: symbolic %d vs scenario %d fillings",
			len(symSet), len(scenSet))
	}
	for k := range symSet {
		if !scenSet[k] {
			t.Errorf("filling accepted by symbolic but not scenario engine: %s", k)
		}
	}
}

func fillingSet(fs []encode.Filling) map[string]bool {
	out := make(map[string]bool, len(fs))
	for _, f := range fs {
		var keys []routing.Key
		for k := range f {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].At != keys[j].At {
				return keys[i].At < keys[j].At
			}
			return keys[i].In < keys[j].In
		})
		var sb strings.Builder
		for _, k := range keys {
			sb.WriteString(k.String())
			sb.WriteString("=")
			for _, e := range f[k] {
				sb.WriteString(network.EdgeID(e).String())
			}
			sb.WriteString(";")
		}
		out[sb.String()] = true
	}
	return out
}

// TestSymbolicVerifierOracle: with no holes, P is constant and must agree
// with the brute-force verifier.
func TestSymbolicVerifierOracle(t *testing.T) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)

	for k := 0; k <= 2; k++ {
		sym, err := encode.BuildSymbolic(ctx, r, k, encode.Options{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		symResilient := sym.NumSolutions() > 0
		bruteResilient := verify.Resilient(r, k)
		if symResilient != bruteResilient {
			t.Errorf("k=%d: symbolic=%v brute-force=%v", k, symResilient, bruteResilient)
		}
	}
}

// TestSolveSymbolicRepair: end-to-end symbolic repair of the running
// example.
func TestSolveSymbolicRepair(t *testing.T) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	punchSuspicious(t, n, r, 2)

	sol, err := encode.SolveSymbolic(ctx, r, 2, encode.Options{})
	if err != nil {
		t.Fatalf("SolveSymbolic: %v", err)
	}
	rep, err := verify.Check(ctx, sol.Routing, 2, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resilient {
		t.Errorf("symbolic repair not 2-resilient: %v", rep.Failing)
	}
}

func TestSolveSymbolicUnrepairable(t *testing.T) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	_, err := encode.SolveSymbolic(ctx, r, 2, encode.Options{})
	if !errors.Is(err, encode.ErrUnrepairable) {
		t.Errorf("err = %v, want ErrUnrepairable", err)
	}
}

func TestSymbolicNegativeK(t *testing.T) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	if _, err := encode.BuildSymbolic(ctx, r, -2, encode.Options{}); err == nil {
		t.Error("BuildSymbolic(-2) succeeded")
	}
}

func TestSymbolicK0(t *testing.T) {
	// k = 0: no failure vectors at all; the routing only needs to deliver on
	// the intact network.
	n := papernet.Figure1()
	d := papernet.Figure1Dest(n)
	r := routing.New(n, d)
	for _, key := range r.AllKeys() {
		if err := r.PunchHole(key.In, key.At, 1); err != nil {
			t.Fatal(err)
		}
	}
	sol, err := encode.SolveSymbolic(ctx, r, 0, encode.Options{})
	if err != nil {
		t.Fatalf("SolveSymbolic(k=0): %v", err)
	}
	rep, err := verify.Check(ctx, sol.Routing, 0, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resilient {
		t.Errorf("k=0 synthesis failed: %v", rep.Failing)
	}
}

func TestSymbolicContextCancellation(t *testing.T) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := encode.BuildSymbolic(cctx, r, 2, encode.Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
