package encode

import (
	"context"
	"fmt"
	"math"

	"syrep/internal/bdd"
	"syrep/internal/bvec"
	"syrep/internal/network"
	"syrep/internal/routing"
)

// This file implements the literal BDD formulation of Section III-A with
// symbolic failure vectors f̄_1..f̄_k and universal quantification — the
// direct extension of [26]'s encoding that the paper presents. It is
// exponentially more expensive than the scenario engine and exists for
// fidelity: it reproduces Figure 2, and it cross-checks the scenario engine
// on small networks (both must accept exactly the same hole fillings).
//
// Variable order (crucial for the fixpoint's Replace):
//
//	curIn0 nextIn0 curIn1 nextIn1 ... curV0 nextV0 ... f̄_1 ... f̄_k holes...
//
// Interleaving current and next state bits keeps the cur→next renaming
// order-preserving.

// Symbolic is the built symbolic encoding: the formula P over the hole
// parameters plus everything needed to inspect or decode it.
type Symbolic struct {
	// M is the BDD manager owning P.
	M *bdd.Manager
	// P encodes all hole fillings that make the routing perfectly
	// k-resilient (paper's 𝒫). Its support is exactly the hole variables.
	P bdd.Ref
	// Holes lists the symbolic priority-list parameters, in routing hole
	// order. Slot values are global edge ids.
	Holes []SymbolicHole
	// Iterations is the number of fixpoint rounds needed for D.
	Iterations int

	r *routing.Routing
	k int
}

// SymbolicHole is one synthesised entry: slots encode global edge ids.
type SymbolicHole struct {
	Key   routing.Key
	Slots []bvec.Vec
}

// BuildSymbolic constructs the paper's formula P for the holes of r. It is
// intended for small networks (the failure tuples are enumerated to build
// the connectivity guard Γ, costing O(|E|^k · |V|)).
func BuildSymbolic(ctx context.Context, r *routing.Routing, k int, opts Options) (*Symbolic, error) {
	if k < 0 {
		return nil, fmt.Errorf("encode: negative resilience level %d", k)
	}
	opts = opts.withDefaults()
	m := bdd.NewWithConfig(bdd.Config{NodeLimit: opts.NodeLimit})
	if opts.ManagerHook != nil {
		opts.ManagerHook(m)
	}
	m.Observe(opts.Counters)
	s := &Symbolic{M: m, r: r, k: k}
	err := m.Protect(func() error { return s.build(ctx) })
	if err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Symbolic) build(ctx context.Context) error {
	m := s.M
	net := s.r.Network()
	dest := s.r.Dest()
	numE := net.NumEdges()
	numV := net.NumNodes()
	numReal := net.NumRealEdges()

	weState := bvec.WidthFor(numE)
	wv := bvec.WidthFor(numV)
	wf := bvec.WidthFor(numReal)

	curIn, nextIn := bvec.Interleave(m, "curIn", "nextIn", weState)
	curV, nextV := bvec.Interleave(m, "curV", "nextV", wv)
	fvecs := make([]bvec.Vec, s.k)
	for t := range fvecs {
		fvecs[t] = bvec.New(m, fmt.Sprintf("f%d_", t+1), wf)
	}

	// Hole parameters: slots over global edge ids restricted to candidates.
	domains := bdd.True
	for _, h := range s.r.Holes() {
		cands := net.IncidentEdges(h.Key.At)
		listLen := h.ListLen
		if listLen > len(cands) {
			listLen = len(cands)
		}
		sh := SymbolicHole{Key: h.Key}
		candIDs := make([]uint, len(cands))
		for i, c := range cands {
			candIDs[i] = uint(c)
		}
		for i := 0; i < listLen; i++ {
			vec := bvec.New(m, fmt.Sprintf("p_%d_%d_s%d_", h.Key.At, h.Key.In, i), wf)
			sh.Slots = append(sh.Slots, vec)
			domains = m.And(domains, vec.MemberOf(candIDs))
		}
		if !net.IsLoopback(h.Key.In) && len(cands) > 1 {
			domains = m.And(domains, m.Not(sh.Slots[0].EqConst(uint(h.Key.In))))
		}
		s.Holes = append(s.Holes, sh)
	}
	// The fixpoint loop below GCs under node pressure; domains must survive
	// until the Γ conjunction at the end.
	m.Ref(domains)

	// failed(e) := ⋁_t f̄_t = e, for a concrete real edge e.
	failed := func(e network.EdgeID) bdd.Ref {
		out := bdd.False
		for _, fv := range fvecs {
			out = m.Or(out, fv.EqConst(uint(e)))
		}
		return out
	}
	// failedVec(x̄) := ⋁_t f̄_t = x̄, for a symbolic slot.
	failedVec := func(x bvec.Vec) (bdd.Ref, error) {
		out := bdd.False
		for _, fv := range fvecs {
			eq, err := x.Eq(fv)
			if err != nil {
				return bdd.False, err
			}
			out = m.Or(out, eq)
		}
		return out, nil
	}

	holeAt := make(map[routing.Key]*SymbolicHole)
	for i := range s.Holes {
		holeAt[s.Holes[i].Key] = &s.Holes[i]
	}

	// Transition relation T (paper's 𝒯): current (in, v) forwards to
	// (out, v') where out is the first non-failed priority.
	transition := bdd.False
	for _, key := range s.r.AllKeys() {
		if err := ctx.Err(); err != nil {
			return err
		}
		stateHere := m.And(curIn.EqConst(uint(key.In)), curV.EqConst(uint(key.At)))

		// sel(o) := skipping semantics selects out-edge o.
		var choice bdd.Ref = bdd.False
		if h, ok := holeAt[key]; ok {
			for _, o := range net.IncidentEdges(key.At) {
				nv := net.Other(o, key.At)
				sel := bdd.False
				prefix := bdd.True
				for i, slot := range h.Slots {
					sel = m.Or(sel, m.And(prefix, slot.EqConst(uint(o))))
					if i+1 < len(h.Slots) {
						fv, err := failedVec(slot)
						if err != nil {
							return err
						}
						prefix = m.And(prefix, fv)
					}
				}
				move := m.AndN(
					nextIn.EqConst(uint(o)),
					nextV.EqConst(uint(nv)),
					m.Not(failed(o)),
					sel,
				)
				choice = m.Or(choice, move)
			}
		} else if prio, ok := s.r.Get(key.In, key.At); ok {
			prefix := bdd.True
			for _, o := range prio {
				nv := net.Other(o, key.At)
				move := m.AndN(
					nextIn.EqConst(uint(o)),
					nextV.EqConst(uint(nv)),
					m.Not(failed(o)),
					prefix,
				)
				choice = m.Or(choice, move)
				prefix = m.And(prefix, failed(o))
			}
		}
		transition = m.Or(transition, m.And(stateHere, choice))
	}
	m.Ref(transition)

	// Deliverability fixpoint D (paper's 𝒟): D_0 = (curV = dest).
	var nextCubeVars []bdd.Var
	nextCubeVars = append(nextCubeVars, nextIn.Bits()...)
	nextCubeVars = append(nextCubeVars, nextV.Bits()...)
	nextCube := m.NewCube(nextCubeVars...)

	pairs := make(map[bdd.Var]bdd.Var)
	for i, v := range curIn.Bits() {
		pairs[v] = nextIn.Bits()[i]
	}
	for i, v := range curV.Bits() {
		pairs[v] = nextV.Bits()[i]
	}
	toNext := m.NewReplacement(pairs)

	d := curV.EqConst(uint(dest))
	m.Ref(d)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.Iterations++
		dNext := m.Replace(d, toNext)
		step := m.AndExists(transition, dNext, nextCube)
		nd := m.Or(d, step)
		if nd == d {
			break
		}
		m.Deref(d)
		d = nd
		m.Ref(d)
		if m.NumNodes() > 1<<18 {
			m.GC()
		}
	}

	// Γ and the final universal quantification over failures and sources.
	var fVars []bdd.Var
	for _, fv := range fvecs {
		fVars = append(fVars, fv.Bits()...)
	}
	fCube := m.NewCube(fVars...)

	p := domains
	for _, src := range net.Nodes() {
		if src == dest {
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		dsAssign := curIn.Assign(uint(net.Loopback(src)))
		for k, v := range curV.Assign(uint(src)) {
			dsAssign[k] = v
		}
		dSrc := m.Restrict(d, dsAssign)
		gamma := s.gamma(fvecs, src)
		p = m.And(p, m.ForAll(m.Imp(gamma, dSrc), fCube))
		if p == bdd.False {
			break
		}
	}
	m.Deref(transition)
	m.Deref(d)
	m.Deref(domains)
	s.P = m.Ref(p)
	return nil
}

// gamma builds Γ(src, f̄): the failure-vector assignments that are valid
// encodings (every f̄_t below |E_real|) and keep src connected to the
// destination. Built by enumerating all |E_real|^k failure tuples, which
// bounds this engine to small networks.
func (s *Symbolic) gamma(fvecs []bvec.Vec, src network.NodeID) bdd.Ref {
	m := s.M
	net := s.r.Network()
	dest := s.r.Dest()
	numReal := net.NumRealEdges()

	out := bdd.False
	tuple := make([]int, len(fvecs))
	var rec func(t int)
	rec = func(t int) {
		if t == len(fvecs) {
			F := network.NewEdgeSet(numReal)
			for _, e := range tuple {
				F.Add(network.EdgeID(e))
			}
			if !net.ConnectedWithout(src, dest, F) {
				return
			}
			term := bdd.True
			for i, fv := range fvecs {
				term = m.And(term, fv.EqConst(uint(tuple[i])))
			}
			out = m.Or(out, term)
			return
		}
		for e := 0; e < numReal; e++ {
			tuple[t] = e
			rec(t + 1)
		}
	}
	rec(0)
	if len(fvecs) == 0 {
		// k = 0: no failure variables; connectivity without failures.
		if net.ConnectedWithout(src, dest, network.NewEdgeSet(numReal)) {
			return bdd.True
		}
		return bdd.False
	}
	return out
}

// NumSolutions counts the distinct hole fillings accepted by P.
func (s *Symbolic) NumSolutions() float64 {
	holeBits := 0
	for _, h := range s.Holes {
		for _, slot := range h.Slots {
			holeBits += slot.Width()
		}
	}
	return s.M.SatCount(s.P) / math.Pow(2, float64(s.M.NumVars()-holeBits))
}

// Extract decodes one satisfying filling into a hole-free routing, or
// ErrUnrepairable when P is unsatisfiable.
func (s *Symbolic) Extract() (*routing.Routing, error) {
	assign := s.M.AnySat(s.P)
	if assign == nil {
		return nil, ErrUnrepairable
	}
	filled := s.r.Clone()
	for _, h := range s.Holes {
		prio := make([]network.EdgeID, len(h.Slots))
		for i, slot := range h.Slots {
			prio[i] = network.EdgeID(slot.Decode(assign))
		}
		if err := filled.Set(h.Key.In, h.Key.At, prio); err != nil {
			return nil, fmt.Errorf("encode: symbolic extraction produced invalid entry: %w", err)
		}
	}
	return filled, nil
}

// Enumerate expands up to max satisfying fillings (all when max <= 0).
func (s *Symbolic) Enumerate(max int) []Filling {
	var holeVars []bdd.Var
	for _, h := range s.Holes {
		for _, slot := range h.Slots {
			holeVars = append(holeVars, slot.Bits()...)
		}
	}
	var out []Filling
	s.M.AllSat(s.P, func(a bdd.Assignment) bool {
		var free []bdd.Var
		for _, v := range holeVars {
			if _, ok := a[v]; !ok {
				free = append(free, v)
			}
		}
		full := make(bdd.Assignment, len(holeVars))
		for k, v := range a {
			full[k] = v
		}
		for comb := 0; comb < 1<<len(free); comb++ {
			for i, v := range free {
				full[v] = comb&(1<<i) != 0
			}
			f := make(Filling, len(s.Holes))
			for _, h := range s.Holes {
				prio := make([]network.EdgeID, len(h.Slots))
				for j, slot := range h.Slots {
					prio[j] = network.EdgeID(slot.Decode(full))
				}
				f[h.Key] = prio
			}
			out = append(out, f)
			if max > 0 && len(out) >= max {
				return false
			}
		}
		return true
	})
	return out
}

// SolveSymbolic runs the full symbolic pipeline: build P, extract a filling.
func SolveSymbolic(ctx context.Context, r *routing.Routing, k int, opts Options) (*Solution, error) {
	s, err := BuildSymbolic(ctx, r, k, opts)
	if err != nil {
		return nil, err
	}
	filled, err := s.Extract()
	if err != nil {
		return nil, err
	}
	return &Solution{
		Routing:      filled,
		NumSolutions: s.NumSolutions(),
		PeakNodes:    s.M.NumNodes(),
	}, nil
}
