package heuristic_test

import (
	"context"
	"math/rand"
	"testing"

	"syrep/internal/heuristic"
	"syrep/internal/network"
	"syrep/internal/papernet"
	"syrep/internal/verify"
)

func fig1Analysis(t *testing.T) (*network.Network, *heuristic.Info) {
	t.Helper()
	n := papernet.Figure1()
	info, err := heuristic.Analyze(context.Background(), n, papernet.Figure1Dest(n))
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return n, info
}

// TestDefaultPathsRunningExample reproduces Figure 3: the default next-hop
// edges of the running example.
func TestDefaultPathsRunningExample(t *testing.T) {
	n, info := fig1Analysis(t)
	want := map[string]network.EdgeID{"v1": 3, "v2": 0, "v3": 1, "v4": 2}
	for name, e := range want {
		v := n.NodeByName(name)
		if info.DefaultEdge[v] != e {
			t.Errorf("default edge of %s = e%d, want e%d", name, info.DefaultEdge[v], e)
		}
	}
	if info.DefaultEdge[n.NodeByName("d")] != network.NoEdge {
		t.Error("destination has a default edge")
	}
}

func TestPostSets(t *testing.T) {
	n, info := fig1Analysis(t)
	v1 := n.NodeByName("v1")
	got := info.Post[v1]
	wantNames := []string{"v1", "v3", "d"}
	if len(got) != len(wantNames) {
		t.Fatalf("post(v1) = %v, want %v", got, wantNames)
	}
	for i, name := range wantNames {
		if n.NodeName(got[i]) != name {
			t.Fatalf("post(v1)[%d] = %s, want %s", i, n.NodeName(got[i]), name)
		}
	}
}

func TestPreSets(t *testing.T) {
	n, info := fig1Analysis(t)
	v3 := n.NodeByName("v3")
	// pre(v3) = {v3, v1}: v1's default path goes through v3.
	names := make(map[string]bool)
	for _, u := range info.Pre[v3] {
		names[n.NodeName(u)] = true
	}
	if len(names) != 2 || !names["v3"] || !names["v1"] {
		t.Errorf("pre(v3) = %v, want {v1, v3}", names)
	}
	// pre(d) contains every node.
	if len(info.Pre[n.NodeByName("d")]) != n.NumNodes() {
		t.Errorf("pre(d) = %v, want all nodes", info.Pre[n.NodeByName("d")])
	}
}

// TestMLevels checks the levels discussed in the paper's Section IV-A
// walkthrough: mlevel(v3)=1 via e6 only; e3 has level 2 at v3.
func TestMLevels(t *testing.T) {
	n, info := fig1Analysis(t)
	v3 := n.NodeByName("v3")
	if info.MLevel[v3] != 1 {
		t.Errorf("mlevel(v3) = %d, want 1", info.MLevel[v3])
	}
	if len(info.MLevelEdges[v3]) != 1 || info.MLevelEdges[v3][0] != 6 {
		t.Errorf("mlevel edges of v3 = %v, want [e6]", info.MLevelEdges[v3])
	}
	v4 := n.NodeByName("v4")
	if info.MLevel[v4] != 1 {
		t.Errorf("mlevel(v4) = %d, want 1", info.MLevel[v4])
	}
	if len(info.MLevelEdges[v4]) != 3 {
		t.Errorf("mlevel edges of v4 = %v, want {e4,e5,e6}", info.MLevelEdges[v4])
	}
}

// TestBackupEdges checks the backup-edge walkthrough of Section IV-A: e6 is
// the only backup of v3 (e3 is not), and both e4 and e5 (plus e6) are
// backups of v4.
func TestBackupEdges(t *testing.T) {
	n, info := fig1Analysis(t)
	tests := []struct {
		node string
		want []network.EdgeID
	}{
		{"v1", []network.EdgeID{4}},
		{"v2", []network.EdgeID{5}},
		{"v3", []network.EdgeID{6}},
		{"v4", []network.EdgeID{4, 5, 6}},
	}
	for _, tt := range tests {
		v := n.NodeByName(tt.node)
		got := info.Backups[v]
		if len(got) != len(tt.want) {
			t.Errorf("backups(%s) = %v, want %v", tt.node, got, tt.want)
			continue
		}
		for i := range tt.want {
			if got[i] != tt.want[i] {
				t.Errorf("backups(%s) = %v, want %v", tt.node, got, tt.want)
				break
			}
		}
	}
}

// TestHeuristicTableMatchesFig1b: the generated table is exactly the
// paper's Figure 1b (with ascending-id ordering among backups, which matches
// the paper's choice R(e6,v4) = (e2, e4, e5, ...)).
func TestHeuristicTableMatchesFig1b(t *testing.T) {
	n := papernet.Figure1()
	d := papernet.Figure1Dest(n)
	got, err := heuristic.Generate(context.Background(), n, d)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	want := papernet.Figure1bRouting(n)
	if !got.Equal(want) {
		t.Errorf("heuristic table differs from Figure 1b:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestHeuristicFig1Resilience: the generated table is perfectly 1-resilient
// but not 2-resilient, as the paper demonstrates.
func TestHeuristicFig1Resilience(t *testing.T) {
	n := papernet.Figure1()
	r, err := heuristic.Generate(context.Background(), n, papernet.Figure1Dest(n))
	if err != nil {
		t.Fatal(err)
	}
	if !verify.Resilient(r, 1) {
		t.Error("heuristic table not 1-resilient")
	}
	if verify.Resilient(r, 2) {
		t.Error("heuristic table unexpectedly 2-resilient")
	}
}

// TestGenerate1Resilient: the restricted single-backup variant is perfectly
// 1-resilient (guaranteed by [26]).
func TestGenerate1Resilient(t *testing.T) {
	n := papernet.Figure1()
	r, err := heuristic.Generate1Resilient(context.Background(), n, papernet.Figure1Dest(n))
	if err != nil {
		t.Fatal(err)
	}
	if !verify.Resilient(r, 1) {
		t.Error("restricted heuristic not 1-resilient on Figure 1")
	}
}

// TestGenerate1ResilientRandom2Connected: property test of the [26]
// guarantee on random 2-edge-connected graphs.
func TestGenerate1ResilientRandom2Connected(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for round := 0; round < 25; round++ {
		n := randomTwoConnected(rng, 5+rng.Intn(6))
		for _, dest := range []network.NodeID{0, network.NodeID(n.NumNodes() - 1)} {
			r, err := heuristic.Generate1Resilient(context.Background(), n, dest)
			if err != nil {
				t.Fatalf("round %d: Generate1Resilient: %v", round, err)
			}
			rep, err := verify.Check(context.Background(), r, 1, verify.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Resilient {
				t.Fatalf("round %d dest %d: not 1-resilient; failures: %v\nrouting:\n%s",
					round, dest, rep.Failing, r)
			}
		}
	}
}

// TestGenerateCompleteAndValid: the full heuristic emits a complete,
// well-formed table on random connected graphs.
func TestGenerateCompleteAndValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 20; round++ {
		n := randomTwoConnected(rng, 4+rng.Intn(8))
		r, err := heuristic.Generate(context.Background(), n, 0)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !r.Complete() {
			t.Fatalf("round %d: incomplete table", round)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// The full heuristic is at least 0-resilient (delivers with no
		// failures) on connected graphs.
		if !verify.Resilient(r, 0) {
			t.Fatalf("round %d: not 0-resilient", round)
		}
	}
}

func TestAnalyzeDisconnected(t *testing.T) {
	b := network.NewBuilder("disc")
	b.AddNode("a")
	b.AddNode("b")
	c := b.AddNode("c")
	b.AddEdge(0, c)
	n := b.MustBuild()
	if _, err := heuristic.Analyze(context.Background(), n, 0); err == nil {
		t.Error("Analyze on disconnected network succeeded")
	}
	if _, err := heuristic.Generate(context.Background(), n, 0); err == nil {
		t.Error("Generate on disconnected network succeeded")
	}
}

// TestInEdgeLast: for real in-edges, the arrival edge is the last resort.
func TestInEdgeLast(t *testing.T) {
	n := papernet.Figure1()
	r, err := heuristic.Generate(context.Background(), n, papernet.Figure1Dest(n))
	if err != nil {
		t.Fatal(err)
	}
	v4 := n.NodeByName("v4")
	prio, ok := r.Get(6, v4)
	if !ok {
		t.Fatal("entry missing")
	}
	if prio[len(prio)-1] != 6 {
		t.Errorf("R(e6,v4) = %v: in-edge not last", prio)
	}
	// Loop-back arrivals never contain the loop-back edge.
	lb, _ := r.Get(n.Loopback(v4), v4)
	for _, e := range lb {
		if n.IsLoopback(e) {
			t.Errorf("R(lb_v4,v4) = %v contains a loop-back", lb)
		}
	}
}

// randomTwoConnected builds a ring of size nodes plus random chords: rings
// are 2-edge-connected, chords only help.
func randomTwoConnected(rng *rand.Rand, size int) *network.Network {
	b := network.NewBuilder("rand")
	ids := make([]network.NodeID, size)
	for i := 0; i < size; i++ {
		ids[i] = b.AddNode("n" + string(rune('A'+i)))
	}
	for i := 0; i < size; i++ {
		b.AddEdge(ids[i], ids[(i+1)%size])
	}
	chords := rng.Intn(size)
	for c := 0; c < chords; c++ {
		u := rng.Intn(size)
		v := rng.Intn(size)
		if u != v {
			b.AddEdge(ids[u], ids[v])
		}
	}
	return b.MustBuild()
}
