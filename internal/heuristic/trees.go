package heuristic

import (
	"fmt"

	"syrep/internal/network"
	"syrep/internal/routing"
)

// GenerateTreeBased builds a skipping routing from a family of spanning
// trees, in the spirit of the arborescence-based fast re-route schemes the
// paper cites as related work (Chiesa et al.) and of Grafting, which the
// paper names as a heuristic whose tables SyRep can repair: each node's
// priority list tries its parent edge in tree 1, then tree 2, and so on,
// with the remaining incident edges and finally the arrival edge as last
// resorts.
//
// The trees are BFS trees toward dest with rotated edge preference, so they
// diversify backup directions without requiring arc-disjointness. The
// resulting tables are deliberately *not* guaranteed resilient — they are a
// realistic third-party input for the repair engine.
func GenerateTreeBased(net *network.Network, dest network.NodeID, trees int) (*routing.Routing, error) {
	if trees < 1 {
		return nil, fmt.Errorf("heuristic: tree count %d < 1", trees)
	}
	parents := make([][]network.EdgeID, trees)
	for t := range parents {
		parent, dist := rotatedBFS(net, dest, t)
		for _, v := range net.Nodes() {
			if dist[v] < 0 {
				return nil, fmt.Errorf("heuristic: node %s cannot reach destination %s",
					net.NodeName(v), net.NodeName(dest))
			}
		}
		parents[t] = parent
	}

	r := routing.New(net, dest)
	for _, v := range net.Nodes() {
		if v == dest {
			continue
		}
		// The per-node preference order: parent edges of the trees, then
		// the remaining incident edges.
		var pref []network.EdgeID
		seen := make(map[network.EdgeID]bool)
		for t := 0; t < trees; t++ {
			e := parents[t][v]
			if !seen[e] {
				seen[e] = true
				pref = append(pref, e)
			}
		}
		for _, e := range net.IncidentEdges(v) {
			if !seen[e] {
				seen[e] = true
				pref = append(pref, e)
			}
		}

		inEdges := append([]network.EdgeID(nil), net.IncidentEdges(v)...)
		inEdges = append(inEdges, net.Loopback(v))
		for _, in := range inEdges {
			isLB := net.IsLoopback(in)
			var prio []network.EdgeID
			for _, e := range pref {
				if e != in || isLB {
					prio = append(prio, e)
				}
			}
			if !isLB {
				prio = append(prio, in)
			}
			if err := r.Set(in, v, prio); err != nil {
				return nil, fmt.Errorf("heuristic: %w", err)
			}
		}
	}
	return r, nil
}

// rotatedBFS computes a shortest-path tree toward dest whose tie-breaking
// rotates with round: where a node has several shortest-path parents, round
// r picks the r-th (mod count), so successive rounds genuinely differ on
// graphs with equal-length alternatives.
func rotatedBFS(net *network.Network, dest network.NodeID, round int) (parent []network.EdgeID, dist []int) {
	parent = make([]network.EdgeID, net.NumNodes())
	dist = make([]int, net.NumNodes())
	for i := range parent {
		parent[i] = network.NoEdge
		dist[i] = -1
	}
	dist[dest] = 0
	queue := []network.NodeID{dest}
	//syreplint:ignore ctxpoll BFS enqueues each node at most once, so the drain is bounded by |V|
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range net.IncidentEdges(v) {
			w := net.Other(e, v)
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	for _, w := range net.Nodes() {
		if w == dest || dist[w] < 0 {
			continue
		}
		var cands []network.EdgeID
		for _, e := range net.IncidentEdges(w) {
			if dist[net.Other(e, w)] == dist[w]-1 {
				cands = append(cands, e)
			}
		}
		parent[w] = cands[round%len(cands)]
	}
	return parent, dist
}
