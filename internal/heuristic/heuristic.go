// Package heuristic implements the fast routing generator of Section IV-A
// of the SyRep paper: default (shortest) paths toward the destination, node
// levels, mlevel edges, backup edges, and the skipping-table construction
// that puts the default edge first, backup edges next, remaining edges
// after, and the arrival edge last.
//
// The construction runs in polynomial time and empirically produces
// close-to-resilient tables; SyRep's repair engine then fixes the few
// ill-defined entries.
package heuristic

import (
	"context"
	"fmt"
	"math"

	"syrep/internal/network"
	"syrep/internal/routing"
)

// Info carries the analysis artefacts of the heuristic: default edges,
// default paths, levels and backup edges. It is exposed so that tests and
// examples can reproduce the paper's Figure 3.
type Info struct {
	Dest network.NodeID
	// DefaultEdge is e_v, the primary next-hop of each node (NoEdge for the
	// destination).
	DefaultEdge []network.EdgeID
	// Dist is the hop distance of each node to the destination.
	Dist []int
	// Post lists post(v): the nodes on the default path from v to the
	// destination, inclusive of both endpoints.
	Post [][]network.NodeID
	// Pre lists pre(v): the nodes whose default path contains v (including
	// v itself).
	Pre [][]network.NodeID
	// MLevel is the minimum level of each node (paper Sec. IV-A); the
	// destination has MLevel 0 by convention.
	MLevel []int
	// MLevelEdges lists the edges achieving MLevel at each node.
	MLevelEdges [][]network.EdgeID
	// Backups lists the backup edges of each node, ascending by edge id.
	Backups [][]network.EdgeID
}

// Analyze computes the heuristic's structural artefacts for net and dest.
// It fails when some node cannot reach the destination, and returns ctx.Err()
// promptly on cancellation (the level and backup computations are the
// O(|V|·|E|·path) part of the heuristic).
func Analyze(ctx context.Context, net *network.Network, dest network.NodeID) (*Info, error) {
	parent, dist := net.ShortestPathTree(dest)
	for _, v := range net.Nodes() {
		if dist[v] < 0 {
			return nil, fmt.Errorf("heuristic: node %s cannot reach destination %s",
				net.NodeName(v), net.NodeName(dest))
		}
	}
	nv := net.NumNodes()
	info := &Info{
		Dest:        dest,
		DefaultEdge: parent,
		Dist:        dist,
		Post:        make([][]network.NodeID, nv),
		Pre:         make([][]network.NodeID, nv),
		MLevel:      make([]int, nv),
		MLevelEdges: make([][]network.EdgeID, nv),
		Backups:     make([][]network.EdgeID, nv),
	}

	inPost := make([][]bool, nv) // inPost[v][u]: u ∈ post(v)
	for _, v := range net.Nodes() {
		info.Post[v] = net.DefaultPath(v, dest, parent)
		inPost[v] = make([]bool, nv)
		for _, u := range info.Post[v] {
			inPost[v][u] = true
		}
	}
	for _, u := range net.Nodes() {
		for _, v := range info.Post[u] {
			info.Pre[v] = append(info.Pre[v], u)
		}
	}

	// Levels: level of v via edge e={v,v'} is |defaultPath(v') ∩ post(v)|.
	// The node's own default edge e_v is not an alternative and is excluded
	// (the paper's walkthrough counts only e6 as v3's mlevel edge, not its
	// default e1).
	for _, v := range net.Nodes() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if v == dest {
			continue
		}
		best := math.MaxInt
		var bestEdges []network.EdgeID
		for _, e := range net.IncidentEdges(v) {
			if e == parent[v] {
				continue
			}
			w := net.Other(e, v)
			lvl := 0
			for _, u := range info.Post[w] {
				if inPost[v][u] {
					lvl++
				}
			}
			switch {
			case lvl < best:
				best = lvl
				bestEdges = []network.EdgeID{e}
			case lvl == best:
				bestEdges = append(bestEdges, e)
			}
		}
		info.MLevel[v] = best
		info.MLevelEdges[v] = bestEdges
	}

	// Backup edges (paper Sec. IV-A): if v itself has the smallest mlevel in
	// pre(v), its backups are its mlevel edges; otherwise they are the
	// default edges e_{v'} of children v' whose subtree pre(v') contains a
	// smallest-mlevel node of pre(v).
	for _, v := range net.Nodes() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if v == dest {
			continue
		}
		minML := math.MaxInt
		for _, u := range info.Pre[v] {
			if u != dest && info.MLevel[u] < minML {
				minML = info.MLevel[u]
			}
		}
		if info.MLevel[v] == minML {
			info.Backups[v] = append([]network.EdgeID(nil), info.MLevelEdges[v]...)
			continue
		}
		inSubtree := make(map[network.NodeID]bool, len(info.Pre[v]))
		for _, u := range info.Pre[v] {
			inSubtree[u] = true
		}
		var backups []network.EdgeID
		seen := make(map[network.EdgeID]bool)
		for _, u := range info.Pre[v] {
			if u == v {
				continue
			}
			ev := parent[u]
			if net.Other(ev, u) != v || seen[ev] {
				continue // e_u not incident to v, or already taken
			}
			// u is a direct child of v; does pre(u) hold a min-mlevel node?
			for _, w := range info.Pre[u] {
				if w != dest && info.MLevel[w] == minML {
					backups = append(backups, ev)
					seen[ev] = true
					break
				}
			}
		}
		sortEdges(backups)
		info.Backups[v] = backups
	}
	return info, nil
}

// Generate builds the heuristic skipping routing of Section IV-A: for every
// node v != dest and in-edge e,
//
//	R(e, v)   = (e_v, backups..., rest..., e)   when e != e_v
//	R(e_v, v) = (backups..., rest..., e_v)
//
// with backup edges and remaining edges in ascending edge-id order (the
// paper leaves the order arbitrary). The arrival edge is appended as the
// last resort except for loop-back arrivals, which cannot re-forward to
// themselves.
func Generate(ctx context.Context, net *network.Network, dest network.NodeID) (*routing.Routing, error) {
	info, err := Analyze(ctx, net, dest)
	if err != nil {
		return nil, err
	}
	return generate(ctx, net, dest, info, false)
}

// Generate1Resilient builds the restricted variant that keeps only the
// first backup edge: (e_v, b_1, e) — proven perfectly 1-resilient in [26].
func Generate1Resilient(ctx context.Context, net *network.Network, dest network.NodeID) (*routing.Routing, error) {
	info, err := Analyze(ctx, net, dest)
	if err != nil {
		return nil, err
	}
	return generate(ctx, net, dest, info, true)
}

// GenerateWithInfo is Generate for callers that already ran Analyze.
func GenerateWithInfo(ctx context.Context, net *network.Network, info *Info) (*routing.Routing, error) {
	return generate(ctx, net, info.Dest, info, false)
}

func generate(ctx context.Context, net *network.Network, dest network.NodeID, info *Info, firstBackupOnly bool) (*routing.Routing, error) {
	r := routing.New(net, dest)
	for _, v := range net.Nodes() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if v == dest {
			continue
		}
		ev := info.DefaultEdge[v]
		backups := info.Backups[v]
		if firstBackupOnly && len(backups) > 1 {
			backups = backups[:1]
		}

		inEdges := append([]network.EdgeID(nil), net.IncidentEdges(v)...)
		inEdges = append(inEdges, net.Loopback(v))
		for _, in := range inEdges {
			prio := buildList(net, v, in, ev, backups, firstBackupOnly)
			if err := r.Set(in, v, prio); err != nil {
				return nil, fmt.Errorf("heuristic: %w", err)
			}
		}
	}
	return r, nil
}

// buildList assembles one priority list per the construction rules.
func buildList(net *network.Network, v network.NodeID, in, ev network.EdgeID,
	backups []network.EdgeID, skipRest bool) []network.EdgeID {

	var prio []network.EdgeID
	used := make(map[network.EdgeID]bool)
	add := func(e network.EdgeID) {
		if !used[e] {
			used[e] = true
			prio = append(prio, e)
		}
	}
	isLB := net.IsLoopback(in)
	if in != ev {
		add(ev)
	}
	for _, b := range backups {
		if b != in || isLB {
			add(b)
		}
	}
	if !skipRest {
		for _, e := range net.IncidentEdges(v) {
			if e != ev && (e != in || isLB) {
				add(e)
			}
		}
	}
	if !isLB {
		add(in) // bounce back to the sender as the very last resort
	}
	return prio
}

func sortEdges(edges []network.EdgeID) {
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && edges[j] < edges[j-1]; j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
}
