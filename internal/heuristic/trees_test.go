package heuristic_test

import (
	"context"
	"errors"
	"testing"

	"syrep/internal/heuristic"
	"syrep/internal/network"
	"syrep/internal/papernet"
	"syrep/internal/repair"
	"syrep/internal/verify"
)

func TestGenerateTreeBasedBasics(t *testing.T) {
	n := papernet.Figure1()
	d := papernet.Figure1Dest(n)
	r, err := heuristic.GenerateTreeBased(n, d, 2)
	if err != nil {
		t.Fatalf("GenerateTreeBased: %v", err)
	}
	if !r.Complete() {
		t.Error("tree-based table incomplete")
	}
	if err := r.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Delivers on the intact network.
	if !verify.Resilient(r, 0) {
		t.Error("tree-based table not 0-resilient")
	}
}

func TestGenerateTreeBasedValidation(t *testing.T) {
	n := papernet.Figure1()
	d := papernet.Figure1Dest(n)
	if _, err := heuristic.GenerateTreeBased(n, d, 0); err == nil {
		t.Error("tree count 0 accepted")
	}
	// Disconnected network.
	b := network.NewBuilder("disc")
	b.AddNode("a")
	b.AddNode("b")
	disc := b.MustBuild()
	if _, err := heuristic.GenerateTreeBased(disc, 0, 2); err == nil {
		t.Error("disconnected network accepted")
	}
}

// TestTreeBasedTablesAreRepairable plays the paper's Grafting scenario: a
// third-party heuristic's table is fed to SyRep's repair and comes out
// perfectly resilient.
func TestTreeBasedTablesAreRepairable(t *testing.T) {
	n := papernet.Figure1()
	d := papernet.Figure1Dest(n)
	for _, trees := range []int{1, 2, 3} {
		r, err := heuristic.GenerateTreeBased(n, d, trees)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= 2; k++ {
			out, err := repair.Repair(context.Background(), r, k, repair.Options{Escalate: true})
			if err != nil {
				if errors.Is(err, repair.ErrUnrepairable) {
					t.Errorf("trees=%d k=%d: unrepairable", trees, k)
					continue
				}
				t.Fatal(err)
			}
			if !verify.Resilient(out.Routing, k) {
				t.Errorf("trees=%d k=%d: repair output not resilient", trees, k)
			}
		}
	}
}

func TestTreeBasedDiversity(t *testing.T) {
	// Node b sits at distance 2 with two shortest-path parents (via a and
	// via c) and a third edge to x, so the second tree must promote the
	// alternative parent ahead of the remaining edge.
	bld := network.NewBuilder("tie")
	d := bld.AddNode("d")
	a := bld.AddNode("a")
	c := bld.AddNode("c")
	b := bld.AddNode("b")
	x := bld.AddNode("x")
	bld.AddEdge(d, a) // e0
	bld.AddEdge(d, c) // e1
	bld.AddEdge(a, b) // e2
	bld.AddEdge(b, x) // e3
	bld.AddEdge(c, b) // e4
	bld.AddEdge(a, x) // e5
	n := bld.MustBuild()

	one, err := heuristic.GenerateTreeBased(n, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	two, err := heuristic.GenerateTreeBased(n, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if one.Equal(two) {
		t.Error("1-tree and 2-tree tables are identical; rotation has no effect")
	}
	prio, _ := two.Get(n.Loopback(b), b)
	if len(prio) != 3 || prio[0] != 2 || prio[1] != 4 {
		t.Errorf("R(lb_b, b) = %v, want (e2, e4, e3)", prio)
	}
}
