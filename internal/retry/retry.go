// Package retry provides the repository's one retry-delay policy:
// exponential growth with full jitter (delay = uniform[0, min(cap,
// base·2^attempt))), the schedule that spreads retry storms thinnest for a
// loaded service. It exists so the synthesis server's request retries and
// the churn controller's southbound push retries share a single, tested
// implementation instead of two drifting copies.
//
// The RNG is seeded, so a component's delay sequence is reproducible from
// its configuration — the same property the fault-injection harness relies
// on everywhere else in the tree.
package retry

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Backoff computes full-jitter exponential retry delays. Create with New;
// safe for concurrent use.
type Backoff struct {
	base, cap time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// New returns a Backoff growing from base to cap. A zero seed is replaced by
// 1 so the zero configuration is still deterministic; non-positive base or
// cap yield zero delays (retry immediately), which callers choose explicitly
// rather than getting a hidden default.
func New(base, cap time.Duration, seed int64) *Backoff {
	if seed == 0 {
		seed = 1
	}
	return &Backoff{base: base, cap: cap, rng: rand.New(rand.NewSource(seed))}
}

// Delay returns the full-jitter delay for the given zero-based attempt:
// uniform in [0, min(cap, base·2^attempt)).
func (b *Backoff) Delay(attempt int) time.Duration {
	ceil := b.base
	for i := 0; i < attempt && ceil < b.cap; i++ {
		ceil *= 2
	}
	if ceil > b.cap {
		ceil = b.cap
	}
	if ceil <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return time.Duration(b.rng.Int63n(int64(ceil)))
}

// Sleep blocks for d or until ctx is cancelled, returning the cancellation
// cause in the latter case. It is the context-aware sleep every retry loop
// needs next to Delay.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return context.Cause(ctx)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}
