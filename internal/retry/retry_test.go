package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestDelayCeilings drives the jitter ceiling table: each attempt's delay
// must fall in [0, min(cap, base·2^attempt)), and attempt growth must stop
// at the cap.
func TestDelayCeilings(t *testing.T) {
	base, cap := 10*time.Millisecond, 80*time.Millisecond
	ceilings := []time.Duration{
		0: 10 * time.Millisecond,
		1: 20 * time.Millisecond,
		2: 40 * time.Millisecond,
		3: 80 * time.Millisecond,
		4: 80 * time.Millisecond, // capped
		5: 80 * time.Millisecond,
	}
	b := New(base, cap, 42)
	for attempt, ceil := range ceilings {
		for trial := 0; trial < 200; trial++ {
			d := b.Delay(attempt)
			if d < 0 || d >= ceil {
				t.Fatalf("attempt %d trial %d: delay %v outside [0, %v)", attempt, trial, d, ceil)
			}
		}
	}
}

// TestDelayDeterministic pins the property every fault-injection test relies
// on: the same seed yields the same delay sequence, and different seeds
// diverge.
func TestDelayDeterministic(t *testing.T) {
	seq := func(seed int64) []time.Duration {
		b := New(50*time.Millisecond, 2*time.Second, seed)
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = b.Delay(i)
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 7 diverged at attempt %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical delay sequences")
	}
}

// TestZeroSeedIsSeedOne locks the documented zero-value behavior.
func TestZeroSeedIsSeedOne(t *testing.T) {
	a, b := New(time.Millisecond, time.Second, 0), New(time.Millisecond, time.Second, 1)
	for i := 0; i < 8; i++ {
		if da, db := a.Delay(i), b.Delay(i); da != db {
			t.Fatalf("attempt %d: seed-0 delay %v != seed-1 delay %v", i, da, db)
		}
	}
}

// TestDegenerateDurations: non-positive base or cap mean "retry
// immediately", never a panic or a negative delay.
func TestDegenerateDurations(t *testing.T) {
	for _, b := range []*Backoff{
		New(0, time.Second, 1),
		New(time.Millisecond, 0, 1),
		New(-time.Millisecond, -time.Second, 1),
	} {
		for attempt := 0; attempt < 4; attempt++ {
			if d := b.Delay(attempt); d != 0 {
				t.Fatalf("degenerate backoff returned %v, want 0", d)
			}
		}
	}
}

func TestSleepHonorsContext(t *testing.T) {
	cause := errors.New("stop")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	if err := Sleep(ctx, time.Hour); !errors.Is(err, cause) {
		t.Fatalf("Sleep under cancelled ctx = %v, want %v", err, cause)
	}
	if err := Sleep(context.Background(), 0); err != nil {
		t.Fatalf("Sleep(0) = %v, want nil", err)
	}
	if err := Sleep(context.Background(), time.Microsecond); err != nil {
		t.Fatalf("Sleep(1µs) = %v, want nil", err)
	}
}
