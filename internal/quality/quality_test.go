package quality_test

import (
	"context"
	"testing"

	"syrep/internal/network"
	"syrep/internal/papernet"
	"syrep/internal/quality"
	"syrep/internal/routing"
)

var ctx = context.Background()

func fig1() (*network.Network, *routing.Routing) {
	n := papernet.Figure1()
	return n, papernet.Figure1bRouting(n)
}

func TestStretchNoFailures(t *testing.T) {
	n, r := fig1()
	rep, err := quality.Stretch(r, network.NewEdgeSet(n.NumRealEdges()))
	if err != nil {
		t.Fatal(err)
	}
	// With no failures every default path is shortest: stretch 1 everywhere.
	if rep.Max != 1 || rep.Mean != 1 {
		t.Errorf("failure-free stretch max=%v mean=%v, want 1/1", rep.Max, rep.Mean)
	}
	if len(rep.PerSource) != 4 {
		t.Errorf("PerSource has %d entries, want 4", len(rep.PerSource))
	}
	if len(rep.Undelivered) != 0 {
		t.Errorf("Undelivered = %v, want empty", rep.Undelivered)
	}
}

func TestStretchUnderSingleFailure(t *testing.T) {
	n, r := fig1()
	// Fail e1 = {v3, d}: v3 detours via e6, v4, e2 — 2 hops where the
	// shortest alternative is also 2 hops, so stretch stays 1.
	F := network.EdgeSetOf(n.NumRealEdges(), 1)
	rep, err := quality.Stretch(r, F)
	if err != nil {
		t.Fatal(err)
	}
	v3 := n.NodeByName("v3")
	if got := rep.PerSource[v3]; got != 1 {
		t.Errorf("stretch(v3 | e1 failed) = %v, want 1", got)
	}
	if rep.Max < 1 {
		t.Errorf("Max = %v", rep.Max)
	}
}

func TestStretchDetectsDetour(t *testing.T) {
	// Ring d - a - b - c - d: failing the d-a link forces a to travel 3 hops
	// instead of 1 (stretch 1, since the shortest alternative is also 3) —
	// so craft a routing that detours even when a shorter path exists:
	// a 4-cycle with a chord where the routing ignores the chord.
	bld := network.NewBuilder("detour")
	d := bld.AddNode("d")
	a := bld.AddNode("a")
	b := bld.AddNode("b")
	c := bld.AddNode("c")
	e0 := bld.AddEdge(d, a)
	e1 := bld.AddEdge(a, b)
	e2 := bld.AddEdge(b, c)
	e3 := bld.AddEdge(c, d)
	e4 := bld.AddEdge(b, d) // chord the routing will ignore
	n := bld.MustBuild()

	r := routing.New(n, d)
	r.MustSet(n.Loopback(a), a, []network.EdgeID{e0, e1})
	r.MustSet(n.Loopback(b), b, []network.EdgeID{e2}) // ignores chord e4
	r.MustSet(n.Loopback(c), c, []network.EdgeID{e3})
	r.MustSet(e1, b, []network.EdgeID{e2})
	r.MustSet(e2, c, []network.EdgeID{e3})
	r.MustSet(e0, a, []network.EdgeID{e1})
	r.MustSet(e4, b, []network.EdgeID{e1, e2})
	r.MustSet(e3, c, []network.EdgeID{e2})
	r.MustSet(e1, a, []network.EdgeID{e0})
	r.MustSet(e2, b, []network.EdgeID{e4, e1})

	rep, err := quality.Stretch(r, network.NewEdgeSet(n.NumRealEdges()))
	if err != nil {
		t.Fatal(err)
	}
	// b is 1 hop from d via the chord but routes b-c-d: stretch 2.
	nb := n.NodeByName("b")
	if got := rep.PerSource[nb]; got != 2 {
		t.Errorf("stretch(b) = %v, want 2", got)
	}
	if rep.Max != 2 {
		t.Errorf("Max = %v, want 2", rep.Max)
	}
}

func TestStretchReportsUndelivered(t *testing.T) {
	n, _ := fig1()
	d := papernet.Figure1Dest(n)
	r := routing.New(n, d) // empty: every packet dropped
	rep, err := quality.Stretch(r, network.NewEdgeSet(n.NumRealEdges()))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Undelivered) != 4 {
		t.Errorf("Undelivered = %v, want all four sources", rep.Undelivered)
	}
	if len(rep.PerSource) != 0 || rep.Max != 0 || rep.Mean != 0 {
		t.Errorf("empty routing produced stretch data: %+v", rep)
	}
}

func TestWorstStretch(t *testing.T) {
	_, r := fig1()
	worst, at, allDelivered, err := quality.WorstStretch(ctx, r, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !allDelivered {
		t.Error("Figure 1b is 1-resilient; allDelivered should be true at k=1")
	}
	if worst < 1 {
		t.Errorf("worst stretch = %v, want >= 1", worst)
	}
	if worst > 1 && at.Empty() {
		t.Error("worst > 1 but no scenario recorded")
	}

	// At k=2 the routing loops somewhere: allDelivered must be false.
	_, _, allDelivered2, err := quality.WorstStretch(ctx, r, 2)
	if err != nil {
		t.Fatal(err)
	}
	if allDelivered2 {
		t.Error("Figure 1b is not 2-resilient; allDelivered should be false at k=2")
	}
}

func TestWorstStretchCancellation(t *testing.T) {
	_, r := fig1()
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, _, _, err := quality.WorstStretch(cctx, r, 2); err == nil {
		t.Error("cancelled WorstStretch succeeded")
	}
}

func TestLoadFailureFree(t *testing.T) {
	n, r := fig1()
	rep := quality.Load(r, network.NewEdgeSet(n.NumRealEdges()))
	if rep.Undelivered != 0 {
		t.Errorf("Undelivered = %d", rep.Undelivered)
	}
	// Default paths: v1->e3->v3->e1->d, v2->e0->d, v3->e1->d, v4->e2->d.
	want := map[network.EdgeID]int{0: 1, 1: 2, 2: 1, 3: 1}
	for e, w := range want {
		if rep.PerEdge[e] != w {
			t.Errorf("load(e%d) = %d, want %d", e, rep.PerEdge[e], w)
		}
	}
	if rep.MaxLoad != 2 || rep.MaxEdge != 1 {
		t.Errorf("MaxLoad=%d MaxEdge=%v, want 2/e1", rep.MaxLoad, rep.MaxEdge)
	}
}

func TestLoadShiftsUnderFailure(t *testing.T) {
	n, r := fig1()
	F := network.EdgeSetOf(n.NumRealEdges(), 1) // e1 fails
	rep := quality.Load(r, F)
	if rep.PerEdge[1] != 0 {
		t.Errorf("failed edge carries load %d", rep.PerEdge[1])
	}
	// v3's and v1's traffic detours via v4, raising e2's load.
	if rep.PerEdge[2] < 2 {
		t.Errorf("load(e2) = %d, want >= 2 after e1 failure", rep.PerEdge[2])
	}
	if rep.Undelivered != 0 {
		t.Errorf("Undelivered = %d under single failure", rep.Undelivered)
	}
}

func TestLoadCountsPartialPathsOfUndelivered(t *testing.T) {
	n, r := fig1()
	F := network.EdgeSetOf(n.NumRealEdges(), 1, 2) // the Figure 1c loop
	rep := quality.Load(r, F)
	if rep.Undelivered != 3 {
		t.Errorf("Undelivered = %d, want 3", rep.Undelivered)
	}
	// The loop v3-v4-v1-v3 puts load on e6, e4, e3.
	for _, e := range []network.EdgeID{3, 4, 6} {
		if rep.PerEdge[e] == 0 {
			t.Errorf("loop edge e%d carries no load", e)
		}
	}
}
