// Package quality evaluates quantitative properties of skipping routings
// beyond pure connectivity: path stretch (route length relative to the
// shortest possible path under the same failures) and link load (how traffic
// concentrates on links when every node sends to the destination). The
// SyRep paper motivates both: Section IV-A notes the default-path choice can
// minimise "stretch or congestion", and Section VII lists utilisation- and
// congestion-aware synthesis as future work.
package quality

import (
	"context"
	"fmt"

	"syrep/internal/network"
	"syrep/internal/routing"
	"syrep/internal/trace"
)

// StretchReport summarises per-source path stretch under one failure
// scenario. Stretch of a delivered trace is its hop count divided by the
// shortest-path distance in G∖F; sources whose packets are not delivered are
// reported separately.
type StretchReport struct {
	// Failed is the failure scenario evaluated.
	Failed network.EdgeSet
	// PerSource maps each connected source to its stretch (0 for the
	// destination itself). Undelivered sources are absent.
	PerSource map[network.NodeID]float64
	// Undelivered lists connected sources whose trace did not reach the
	// destination (the routing is not resilient enough for F).
	Undelivered []network.NodeID
	// Max and Mean aggregate PerSource (zero when empty).
	Max  float64
	Mean float64
}

// Stretch evaluates the routing under one failure scenario.
func Stretch(r *routing.Routing, failed network.EdgeSet) (*StretchReport, error) {
	net := r.Network()
	dest := r.Dest()
	_, dist := distUnder(net, dest, failed)

	rep := &StretchReport{
		Failed:    failed.Clone(),
		PerSource: make(map[network.NodeID]float64),
	}
	var sum float64
	for _, s := range net.Nodes() {
		if s == dest || dist[s] < 0 {
			continue
		}
		res := trace.Run(r, failed, s)
		if res.Outcome != trace.Delivered {
			rep.Undelivered = append(rep.Undelivered, s)
			continue
		}
		hops := len(res.Edges) - 1 // exclude the loop-back
		if dist[s] == 0 {
			return nil, fmt.Errorf("quality: zero distance for non-destination %d", s)
		}
		st := float64(hops) / float64(dist[s])
		rep.PerSource[s] = st
		sum += st
		if st > rep.Max {
			rep.Max = st
		}
	}
	if len(rep.PerSource) > 0 {
		rep.Mean = sum / float64(len(rep.PerSource))
	}
	return rep, nil
}

// WorstStretch returns the maximum stretch of any delivered trace over all
// failure scenarios |F| <= k, along with the scenario achieving it. It also
// reports whether some connected source went undelivered in any scenario
// (in which case the routing is not perfectly k-resilient).
func WorstStretch(ctx context.Context, r *routing.Routing, k int) (worst float64, at network.EdgeSet, allDelivered bool, err error) {
	net := r.Network()
	allDelivered = true
	var ctxErr error
	net.ForEachScenario(k, func(F network.EdgeSet) bool {
		if cerr := ctx.Err(); cerr != nil {
			ctxErr = cerr
			return false
		}
		rep, serr := Stretch(r, F)
		if serr != nil {
			ctxErr = serr
			return false
		}
		if len(rep.Undelivered) > 0 {
			allDelivered = false
		}
		if rep.Max > worst {
			worst = rep.Max
			at = F.Clone()
		}
		return true
	})
	if ctxErr != nil {
		return 0, network.EdgeSet{}, false, ctxErr
	}
	return worst, at, allDelivered, nil
}

// LoadReport counts, per link, how many source traces cross it when every
// node sends one unit of traffic to the destination under a fixed scenario.
type LoadReport struct {
	Failed network.EdgeSet
	// PerEdge is indexed by real edge id.
	PerEdge []int
	// MaxLoad is the largest entry of PerEdge; MaxEdge one of its edges.
	MaxLoad int
	MaxEdge network.EdgeID
	// Undelivered counts sources whose packet did not arrive (their partial
	// paths still contribute load).
	Undelivered int
}

// Load evaluates link utilisation under one failure scenario.
func Load(r *routing.Routing, failed network.EdgeSet) *LoadReport {
	net := r.Network()
	dest := r.Dest()
	rep := &LoadReport{
		Failed:  failed.Clone(),
		PerEdge: make([]int, net.NumRealEdges()),
		MaxEdge: network.NoEdge,
	}
	for _, s := range net.Nodes() {
		if s == dest {
			continue
		}
		res := trace.Run(r, failed, s)
		if res.Outcome != trace.Delivered {
			rep.Undelivered++
		}
		for _, e := range res.Edges[1:] { // skip the loop-back
			if !net.IsLoopback(e) {
				rep.PerEdge[e]++
			}
		}
	}
	for e, load := range rep.PerEdge {
		if load > rep.MaxLoad {
			rep.MaxLoad = load
			rep.MaxEdge = network.EdgeID(e)
		}
	}
	return rep
}

// distUnder computes shortest-path distances toward dest in G∖F.
func distUnder(net *network.Network, dest network.NodeID, failed network.EdgeSet) (parent []network.EdgeID, dist []int) {
	parent = make([]network.EdgeID, net.NumNodes())
	dist = make([]int, net.NumNodes())
	for i := range dist {
		dist[i] = -1
		parent[i] = network.NoEdge
	}
	dist[dest] = 0
	queue := []network.NodeID{dest}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range net.IncidentEdges(v) {
			if failed.Has(e) {
				continue
			}
			w := net.Other(e, v)
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				parent[w] = e
				queue = append(queue, w)
			}
		}
	}
	return parent, dist
}
