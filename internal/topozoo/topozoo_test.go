package topozoo_test

import (
	"os"
	"strings"
	"testing"

	"syrep/internal/network"
	"syrep/internal/topozoo"
)

func TestEmbeddedTopologies(t *testing.T) {
	instances := topozoo.Embedded()
	if len(instances) < 8 {
		t.Fatalf("embedded suite has %d instances, want >= 8", len(instances))
	}
	seen := make(map[string]bool)
	for _, inst := range instances {
		if seen[inst.Name] {
			t.Errorf("duplicate instance %q", inst.Name)
		}
		seen[inst.Name] = true
		if !inst.Net.Connected() {
			t.Errorf("%s: not connected", inst.Name)
		}
		if inst.Net.NumNodes() < 4 {
			t.Errorf("%s: only %d nodes", inst.Name, inst.Net.NumNodes())
		}
		if int(inst.Dest) >= inst.Net.NumNodes() {
			t.Errorf("%s: destination out of range", inst.Name)
		}
	}
	// Abilene is the canonical 11-node/14-edge backbone and 2-edge-connected.
	for _, inst := range instances {
		if inst.Name != "Abilene" {
			continue
		}
		if inst.Net.NumNodes() != 11 || inst.Net.NumRealEdges() != 14 {
			t.Errorf("Abilene: %d nodes / %d edges, want 11/14",
				inst.Net.NumNodes(), inst.Net.NumRealEdges())
		}
		if inst.Net.EdgeConnectivity() != 2 {
			t.Errorf("Abilene edge connectivity = %d, want 2", inst.Net.EdgeConnectivity())
		}
	}
}

func TestBizNetIsChainHeavy(t *testing.T) {
	for _, inst := range topozoo.Embedded() {
		if inst.Name != "BizNet" {
			continue
		}
		deg2 := 0
		for _, v := range inst.Net.Nodes() {
			if inst.Net.Degree(v) == 2 {
				deg2++
			}
		}
		if deg2 < 6 {
			t.Errorf("BizNet has only %d degree-2 nodes; the Figure 5 demo needs chains", deg2)
		}
		return
	}
	t.Fatal("BizNet missing from embedded suite")
}

func TestGenerateDeterministic(t *testing.T) {
	a := topozoo.Generate(topozoo.GenConfig{Nodes: 20, Seed: 7})
	b := topozoo.Generate(topozoo.GenConfig{Nodes: 20, Seed: 7})
	if a.NumNodes() != b.NumNodes() || a.NumRealEdges() != b.NumRealEdges() {
		t.Error("same seed produced different topologies")
	}
	for e := 0; e < a.NumRealEdges(); e++ {
		au, av := a.Endpoints(network.EdgeID(e))
		bu, bv := b.Endpoints(network.EdgeID(e))
		if au != bu || av != bv {
			t.Fatalf("edge %d differs between runs", e)
		}
	}
	c := topozoo.Generate(topozoo.GenConfig{Nodes: 20, Seed: 8})
	if c.NumRealEdges() == a.NumRealEdges() {
		// Different seeds usually differ; edges equal is possible but the
		// endpoints should not all match.
		same := true
		for e := 0; e < a.NumRealEdges(); e++ {
			au, av := a.Endpoints(network.EdgeID(e))
			cu, cv := c.Endpoints(network.EdgeID(e))
			if au != cu || av != cv {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical topologies")
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	for _, nodes := range []int{8, 16, 32, 64, 120} {
		net := topozoo.Generate(topozoo.GenConfig{Nodes: nodes, Seed: 1})
		if net.NumNodes() != nodes {
			t.Errorf("Nodes=%d: generated %d nodes", nodes, net.NumNodes())
		}
		if !net.Connected() {
			t.Errorf("Nodes=%d: disconnected", nodes)
		}
		if got := net.EdgeConnectivity(); got < 2 {
			t.Errorf("Nodes=%d: edge connectivity %d, want >= 2", nodes, got)
		}
		meanDeg := 2 * float64(net.NumRealEdges()) / float64(net.NumNodes())
		if meanDeg < 2.0 || meanDeg > 3.5 {
			t.Errorf("Nodes=%d: mean degree %.2f outside Zoo-like range", nodes, meanDeg)
		}
	}
}

func TestGenerateTinyClamped(t *testing.T) {
	net := topozoo.Generate(topozoo.GenConfig{Nodes: 1, Seed: 1})
	if net.NumNodes() < 3 {
		t.Errorf("tiny config produced %d nodes", net.NumNodes())
	}
	if !net.Connected() {
		t.Error("tiny network disconnected")
	}
}

func TestGeneratedSuite(t *testing.T) {
	suite := topozoo.GeneratedSuite(topozoo.SuiteConfig{MinNodes: 8, MaxNodes: 16, Step: 4, SeedsPerSize: 2})
	if len(suite) != 6 {
		t.Fatalf("suite size = %d, want 6", len(suite))
	}
	names := make(map[string]bool)
	for _, inst := range suite {
		if names[inst.Name] {
			t.Errorf("duplicate name %q", inst.Name)
		}
		names[inst.Name] = true
	}
}

func TestSuiteCombines(t *testing.T) {
	all := topozoo.Suite(topozoo.SuiteConfig{MinNodes: 8, MaxNodes: 12, Step: 4})
	if len(all) != len(topozoo.Embedded())+4 {
		t.Errorf("Suite size = %d", len(all))
	}
}

const sampleGraphML = `<?xml version="1.0" encoding="utf-8"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <key attr.name="label" attr.type="string" for="node" id="d33"/>
  <graph edgedefault="undirected">
    <node id="0"><data key="d33">Vienna</data></node>
    <node id="1"><data key="d33">Graz</data></node>
    <node id="2"><data key="d33">Linz</data></node>
    <node id="3"><data key="d33">Vienna</data></node>
    <edge source="0" target="1"/>
    <edge source="1" target="2"/>
    <edge source="2" target="0"/>
    <edge source="0" target="3"/>
    <edge source="3" target="1"/>
    <edge source="2" target="2"/>
  </graph>
</graphml>`

func TestParseGraphML(t *testing.T) {
	net, err := topozoo.ParseGraphML(strings.NewReader(sampleGraphML), "sample")
	if err != nil {
		t.Fatalf("ParseGraphML: %v", err)
	}
	if net.NumNodes() != 4 {
		t.Errorf("nodes = %d, want 4", net.NumNodes())
	}
	// Self-loop dropped: 5 real edges.
	if net.NumRealEdges() != 5 {
		t.Errorf("edges = %d, want 5", net.NumRealEdges())
	}
	if net.NodeByName("Vienna") < 0 {
		t.Error("label-based name missing")
	}
	// Duplicate label disambiguated.
	if net.NodeByName("Vienna#3") < 0 {
		t.Error("duplicate label not disambiguated")
	}
}

func TestParseGraphMLErrors(t *testing.T) {
	tests := []struct {
		name string
		doc  string
	}{
		{"garbage", "<graphml"},
		{"no nodes", `<graphml><graph edgedefault="undirected"></graph></graphml>`},
		{"dup node id", `<graphml><graph><node id="0"/><node id="0"/></graph></graphml>`},
		{"unknown source", `<graphml><graph><node id="0"/><edge source="9" target="0"/></graph></graphml>`},
		{"unknown target", `<graphml><graph><node id="0"/><edge source="0" target="9"/></graph></graphml>`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := topozoo.ParseGraphML(strings.NewReader(tt.doc), tt.name); err == nil {
				t.Error("parse succeeded, want error")
			}
		})
	}
}

func TestLoadGraphMLDir(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir+"/a.graphml", sampleGraphML)
	writeFile(t, dir+"/skip.txt", "not graphml")
	// Disconnected network: skipped.
	writeFile(t, dir+"/b.graphml", `<graphml><graph>
	  <node id="0"/><node id="1"/><node id="2"/>
	  <edge source="0" target="1"/>
	</graph></graphml>`)
	instances, err := topozoo.LoadGraphMLDir(dir)
	if err != nil {
		t.Fatalf("LoadGraphMLDir: %v", err)
	}
	if len(instances) != 1 || instances[0].Name != "a" {
		t.Errorf("instances = %v, want just 'a'", instances)
	}
	if _, err := topozoo.LoadGraphMLDir(dir + "/nope"); err == nil {
		t.Error("missing dir accepted")
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
