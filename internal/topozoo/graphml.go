// Package topozoo supplies the evaluation workloads of the SyRep paper: the
// Internet Topology Zoo benchmark. The real dataset is a set of GraphML
// files; ParseGraphML loads them unchanged when available. Because this
// repository must be self-contained, the package also embeds hand-written
// approximations of well-known Zoo topologies and a deterministic generator
// that mimics the dataset's structural statistics (size range, mean degree,
// chain content) — see DESIGN.md for the substitution rationale.
package topozoo

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"syrep/internal/network"
)

// graphmlDoc mirrors the subset of GraphML the Topology Zoo uses.
type graphmlDoc struct {
	XMLName xml.Name     `xml:"graphml"`
	Keys    []graphmlKey `xml:"key"`
	Graph   graphmlGraph `xml:"graph"`
}

type graphmlKey struct {
	ID   string `xml:"id,attr"`
	For  string `xml:"for,attr"`
	Name string `xml:"attr.name,attr"`
}

type graphmlGraph struct {
	EdgeDefault string         `xml:"edgedefault,attr"`
	Nodes       []graphmlNode  `xml:"node"`
	Edges       []graphmlEdge  `xml:"edge"`
	Data        []graphmlDatum `xml:"data"`
}

type graphmlNode struct {
	ID   string         `xml:"id,attr"`
	Data []graphmlDatum `xml:"data"`
}

type graphmlEdge struct {
	Source string `xml:"source,attr"`
	Target string `xml:"target,attr"`
}

type graphmlDatum struct {
	Key   string `xml:"key,attr"`
	Value string `xml:",chardata"`
}

// ParseGraphML reads one Topology Zoo GraphML document. Node labels are used
// as names when present (disambiguated when duplicated); self-loops are
// dropped (loop-backs are implicit in the network model); parallel edges are
// preserved (the model is a multigraph).
func ParseGraphML(r io.Reader, name string) (*network.Network, error) {
	var doc graphmlDoc
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("topozoo: parse graphml: %w", err)
	}
	if len(doc.Graph.Nodes) == 0 {
		return nil, fmt.Errorf("topozoo: graphml %q has no nodes", name)
	}

	// Find the key that carries node labels, if any.
	labelKey := ""
	for _, k := range doc.Keys {
		if k.For == "node" && strings.EqualFold(k.Name, "label") {
			labelKey = k.ID
			break
		}
	}

	b := network.NewBuilder(name)
	byID := make(map[string]network.NodeID, len(doc.Graph.Nodes))
	usedNames := make(map[string]bool, len(doc.Graph.Nodes))
	for _, gn := range doc.Graph.Nodes {
		if _, dup := byID[gn.ID]; dup {
			return nil, fmt.Errorf("topozoo: duplicate node id %q", gn.ID)
		}
		nodeName := gn.ID
		if labelKey != "" {
			for _, d := range gn.Data {
				if d.Key == labelKey && strings.TrimSpace(d.Value) != "" {
					nodeName = strings.TrimSpace(d.Value)
					break
				}
			}
		}
		if usedNames[nodeName] {
			nodeName = nodeName + "#" + gn.ID
		}
		usedNames[nodeName] = true
		byID[gn.ID] = b.AddNode(nodeName)
	}
	for _, ge := range doc.Graph.Edges {
		u, ok := byID[ge.Source]
		if !ok {
			return nil, fmt.Errorf("topozoo: edge references unknown node %q", ge.Source)
		}
		v, ok := byID[ge.Target]
		if !ok {
			return nil, fmt.Errorf("topozoo: edge references unknown node %q", ge.Target)
		}
		if u == v {
			continue // drop explicit self-loops
		}
		b.AddEdge(u, v)
	}
	return b.Build()
}

// LoadGraphMLDir loads every *.graphml file of dir as an instance, sorted by
// file name. Disconnected networks are skipped, matching the paper's "all
// connected networks from the benchmark".
func LoadGraphMLDir(dir string) ([]Instance, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("topozoo: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".graphml") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var out []Instance
	for _, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("topozoo: %w", err)
		}
		net, err := ParseGraphML(f, strings.TrimSuffix(name, ".graphml"))
		f.Close()
		if err != nil {
			return nil, err
		}
		if !net.Connected() {
			continue
		}
		out = append(out, Instance{Name: net.Name(), Net: net, Dest: 0})
	}
	return out, nil
}
