package topozoo

import (
	"sort"

	"syrep/internal/network"
)

// Embedded topologies: hand-written approximations of well-known Internet
// Topology Zoo networks, used when the real GraphML dataset is not present.
// Node sets and adjacency follow the published maps from memory; they are
// structural stand-ins, not byte-accurate copies (see DESIGN.md).

// Instance is one benchmark workload: a topology plus the destination node
// routings are synthesised for.
type Instance struct {
	Name string
	Net  *network.Network
	Dest network.NodeID
}

// adjacency is a compact topology description: each entry is a link between
// two named nodes (created on demand).
type adjacency [][2]string

func buildAdjacency(name string, links adjacency) *network.Network {
	b := network.NewBuilder(name)
	for _, l := range links {
		b.AddLink(l[0], l[1])
	}
	return b.MustBuild()
}

// Embedded returns the embedded topology suite, sorted by name.
func Embedded() []Instance {
	defs := map[string]adjacency{
		// Abilene: the 11-PoP US research backbone (2-edge-connected).
		"Abilene": {
			{"NewYork", "Chicago"}, {"NewYork", "WashingtonDC"},
			{"Chicago", "Indianapolis"}, {"WashingtonDC", "Atlanta"},
			{"Atlanta", "Indianapolis"}, {"Atlanta", "Houston"},
			{"Indianapolis", "KansasCity"}, {"KansasCity", "Houston"},
			{"KansasCity", "Denver"}, {"Houston", "LosAngeles"},
			{"Denver", "Sunnyvale"}, {"Denver", "Seattle"},
			{"Sunnyvale", "Seattle"}, {"Sunnyvale", "LosAngeles"},
		},
		// Nsfnet: the classic 13-node T1 backbone.
		"Nsfnet": {
			{"Seattle", "PaloAlto"}, {"Seattle", "SaltLake"},
			{"PaloAlto", "SanDiego"}, {"PaloAlto", "SaltLake"},
			{"SanDiego", "Houston"}, {"SaltLake", "Boulder"},
			{"Boulder", "Lincoln"}, {"Boulder", "Houston"},
			{"Lincoln", "Champaign"}, {"Houston", "Atlanta"},
			{"Champaign", "Pittsburgh"}, {"Atlanta", "Pittsburgh"},
			{"Atlanta", "CollegePark"}, {"Pittsburgh", "Ithaca"},
			{"CollegePark", "Ithaca"}, {"CollegePark", "Princeton"},
			{"Ithaca", "Princeton"}, {"Princeton", "AnnArbor"},
			{"AnnArbor", "Champaign"},
		},
		// Arpanet1970: the early five-ring plus spurs.
		"Arpanet1970": {
			{"UCLA", "SRI"}, {"UCLA", "UCSB"}, {"UCLA", "RAND"},
			{"UCSB", "SRI"}, {"SRI", "Utah"}, {"RAND", "BBN"},
			{"Utah", "MIT"}, {"BBN", "MIT"}, {"BBN", "Harvard"},
			{"Harvard", "CMU"}, {"MIT", "Lincoln"}, {"CMU", "Lincoln"},
		},
		// BizNet-style: a metro ring with pronounced chains hanging between
		// hubs — the chain-heavy shape the paper's Figure 5 demonstrates
		// reduction on.
		"BizNet": {
			{"Hub0", "Hub1"}, {"Hub1", "Hub2"}, {"Hub2", "Hub3"},
			{"Hub3", "Hub0"}, {"Hub0", "Hub2"},
			// chain A: Hub1 - a1 - a2 - a3 - a4 - Hub3
			{"Hub1", "a1"}, {"a1", "a2"}, {"a2", "a3"}, {"a3", "a4"}, {"a4", "Hub3"},
			// chain B: Hub0 - b1 - b2 - b3 - Hub2
			{"Hub0", "b1"}, {"b1", "b2"}, {"b2", "b3"}, {"b3", "Hub2"},
			// chain C: Hub1 - c1 - c2 - Hub2
			{"Hub1", "c1"}, {"c1", "c2"}, {"c2", "Hub2"},
		},
		// Cesnet-style: a national research network with a small dense core
		// and chains to regional sites.
		"Cesnet": {
			{"Praha", "Brno"}, {"Praha", "Plzen"}, {"Praha", "HradecKralove"},
			{"Brno", "Olomouc"}, {"Brno", "Ostrava"}, {"Olomouc", "Ostrava"},
			{"Plzen", "CeskeBudejovice"}, {"CeskeBudejovice", "Brno"},
			{"HradecKralove", "Olomouc"}, {"Praha", "UstiNadLabem"},
			{"UstiNadLabem", "Liberec"}, {"Liberec", "HradecKralove"},
		},
		// Renater-style: a ring of rings with chains, larger.
		"Renater": {
			{"Paris", "Lyon"}, {"Paris", "Nancy"}, {"Paris", "Rouen"},
			{"Paris", "Orleans"}, {"Lyon", "Marseille"}, {"Lyon", "Grenoble"},
			{"Grenoble", "Marseille"}, {"Marseille", "Nice"}, {"Nice", "Genova"},
			{"Genova", "Lyon"}, {"Nancy", "Strasbourg"}, {"Strasbourg", "Besancon"},
			{"Besancon", "Lyon"}, {"Rouen", "Caen"}, {"Caen", "Rennes"},
			{"Rennes", "Nantes"}, {"Nantes", "Bordeaux"}, {"Bordeaux", "Toulouse"},
			{"Toulouse", "Montpellier"}, {"Montpellier", "Marseille"},
			{"Orleans", "Tours"}, {"Tours", "Nantes"}, {"Orleans", "Limoges"},
			{"Limoges", "Toulouse"},
		},
		// Garr-style: Italian research network core.
		"Garr": {
			{"Milano", "Torino"}, {"Milano", "Bologna"}, {"Torino", "Genova"},
			{"Genova", "Pisa"}, {"Pisa", "Roma"}, {"Bologna", "Firenze"},
			{"Firenze", "Roma"}, {"Roma", "Napoli"}, {"Napoli", "Bari"},
			{"Bari", "Bologna"}, {"Napoli", "Catania"}, {"Catania", "Palermo"},
			{"Palermo", "Napoli"}, {"Milano", "Padova"}, {"Padova", "Bologna"},
			{"Padova", "Trieste"}, {"Trieste", "Bologna"},
		},
		// Geant-style: the pan-European research core (well-meshed, few
		// chains).
		"Geant": {
			{"London", "Amsterdam"}, {"London", "Paris"}, {"Amsterdam", "Frankfurt"},
			{"Amsterdam", "Copenhagen"}, {"Paris", "Geneva"}, {"Paris", "Madrid"},
			{"Frankfurt", "Geneva"}, {"Frankfurt", "Prague"}, {"Frankfurt", "Copenhagen"},
			{"Geneva", "Milano"}, {"Madrid", "Milano"}, {"Milano", "Vienna"},
			{"Vienna", "Prague"}, {"Prague", "Warsaw"}, {"Warsaw", "Copenhagen"},
			{"Vienna", "Budapest"}, {"Budapest", "Zagreb"}, {"Zagreb", "Milano"},
			{"Budapest", "Warsaw"}, {"Geneva", "London"},
		},
		// Sprint-style: US operator backbone, moderately meshed.
		"Sprint": {
			{"Seattle", "SanJose"}, {"Seattle", "Chicago"}, {"SanJose", "Anaheim"},
			{"SanJose", "KansasCity"}, {"Anaheim", "FortWorth"}, {"FortWorth", "KansasCity"},
			{"FortWorth", "Atlanta"}, {"KansasCity", "Chicago"}, {"Chicago", "NewYork"},
			{"Chicago", "Cheyenne"}, {"Cheyenne", "Seattle"}, {"Atlanta", "Washington"},
			{"Washington", "NewYork"}, {"NewYork", "Boston"}, {"Boston", "Chicago"},
			{"Atlanta", "Orlando"}, {"Orlando", "FortWorth"},
		},
		// Uninett-style: Norwegian national network — a long chain-laden
		// backbone following the coastline, ideal for the reduction rules.
		"Uninett": {
			{"Oslo", "Bergen"}, {"Oslo", "Trondheim"}, {"Bergen", "Stavanger"},
			{"Stavanger", "Kristiansand"}, {"Kristiansand", "Oslo"},
			{"Trondheim", "Steinkjer"}, {"Steinkjer", "Mosjoen"},
			{"Mosjoen", "Bodo"}, {"Bodo", "Narvik"}, {"Narvik", "Tromso"},
			{"Tromso", "Alta"}, {"Alta", "Hammerfest"}, {"Hammerfest", "Kirkenes"},
			{"Kirkenes", "Longyearbyen"}, {"Longyearbyen", "Trondheim"},
			{"Bergen", "Trondheim"},
		},
		// Arnes-style: a small national network with a dense capital region
		// and short spurs.
		"Arnes": {
			{"Ljubljana", "Maribor"}, {"Ljubljana", "Kranj"}, {"Ljubljana", "Koper"},
			{"Ljubljana", "NovoMesto"}, {"Maribor", "MurskaSobota"},
			{"MurskaSobota", "Ptuj"}, {"Ptuj", "Maribor"}, {"Maribor", "Celje"},
			{"Celje", "Ljubljana"}, {"Kranj", "Jesenice"}, {"Jesenice", "NovaGorica"},
			{"NovaGorica", "Koper"}, {"NovoMesto", "Celje"},
		},
		// Aarnet-style: Australian ring with long coastal chains.
		"Aarnet": {
			{"Sydney", "Canberra"}, {"Canberra", "Melbourne"},
			{"Melbourne", "Adelaide"}, {"Adelaide", "Perth"},
			{"Perth", "Darwin"}, {"Darwin", "Alice"}, {"Alice", "Adelaide"},
			{"Sydney", "Brisbane"}, {"Brisbane", "Townsville"},
			{"Townsville", "Cairns"}, {"Cairns", "Darwin"},
			{"Melbourne", "Hobart"}, {"Hobart", "Sydney"},
			{"Sydney", "Armidale"}, {"Armidale", "Brisbane"},
		},
	}
	names := make([]string, 0, len(defs))
	for name := range defs {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Instance, 0, len(names))
	for _, name := range names {
		net := buildAdjacency(name, defs[name])
		out = append(out, Instance{Name: name, Net: net, Dest: 0})
	}
	return out
}
