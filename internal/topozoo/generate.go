package topozoo

import (
	"fmt"
	"math/rand"

	"syrep/internal/network"
)

// GenConfig parameterises the synthetic Zoo-like generator. The defaults
// reproduce the structural statistics of typical Topology Zoo networks:
// mean degree between 2 and 3, a visible share of degree-2 chain nodes, and
// a 2-edge-connected backbone.
type GenConfig struct {
	// Nodes is the total node count (minimum 4).
	Nodes int
	// ChainFraction is the share of nodes placed on chains between backbone
	// hubs (default 0.4).
	ChainFraction float64
	// ExtraChordFraction adds chords to the backbone ring as a fraction of
	// hub count (default 0.5), controlling mean degree.
	ExtraChordFraction float64
	// Seed makes generation deterministic.
	Seed int64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Nodes < 4 {
		c.Nodes = 4
	}
	if c.ChainFraction == 0 {
		c.ChainFraction = 0.4
	}
	if c.ExtraChordFraction == 0 {
		c.ExtraChordFraction = 0.5
	}
	return c
}

// Generate builds a deterministic Zoo-like topology: a backbone ring of
// hubs with random chords, plus chains of degree-2 nodes spliced between
// random distinct hubs. The result is connected and 2-edge-connected by
// construction.
func Generate(cfg GenConfig) *network.Network {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	chainNodes := int(float64(cfg.Nodes) * cfg.ChainFraction)
	hubCount := cfg.Nodes - chainNodes
	if hubCount < 3 {
		hubCount = 3
		chainNodes = cfg.Nodes - hubCount
		if chainNodes < 0 {
			chainNodes = 0
		}
	}

	b := network.NewBuilder(fmt.Sprintf("zoo-n%d-s%d", cfg.Nodes, cfg.Seed))
	hubs := make([]network.NodeID, hubCount)
	for i := range hubs {
		hubs[i] = b.AddNode(fmt.Sprintf("h%d", i))
	}
	for i := range hubs {
		b.AddEdge(hubs[i], hubs[(i+1)%hubCount])
	}
	chords := int(float64(hubCount) * cfg.ExtraChordFraction)
	for c := 0; c < chords; c++ {
		u := rng.Intn(hubCount)
		v := rng.Intn(hubCount)
		if u == v || v == (u+1)%hubCount || u == (v+1)%hubCount {
			continue // skip self and ring-duplicate chords
		}
		b.AddEdge(hubs[u], hubs[v])
	}

	// Chains: consume chainNodes in runs of 1..4 nodes spliced between two
	// distinct hubs.
	serial := 0
	for chainNodes > 0 {
		run := 1 + rng.Intn(4)
		if run > chainNodes {
			run = chainNodes
		}
		chainNodes -= run
		u := hubs[rng.Intn(hubCount)]
		v := hubs[rng.Intn(hubCount)]
		for v == u {
			v = hubs[rng.Intn(hubCount)]
		}
		prev := u
		for i := 0; i < run; i++ {
			cur := b.AddNode(fmt.Sprintf("c%d", serial))
			serial++
			b.AddEdge(prev, cur)
			prev = cur
		}
		b.AddEdge(prev, v)
	}
	return b.MustBuild()
}

// SuiteConfig controls GeneratedSuite.
type SuiteConfig struct {
	// MinNodes/MaxNodes bound the instance sizes (defaults 8 and 40).
	MinNodes, MaxNodes int
	// Step is the node-count increment between sizes (default 4).
	Step int
	// SeedsPerSize generates several instances per size (default 2).
	SeedsPerSize int
}

func (c SuiteConfig) withDefaults() SuiteConfig {
	if c.MinNodes == 0 {
		c.MinNodes = 8
	}
	if c.MaxNodes == 0 {
		c.MaxNodes = 40
	}
	if c.Step == 0 {
		c.Step = 4
	}
	if c.SeedsPerSize == 0 {
		c.SeedsPerSize = 2
	}
	return c
}

// GeneratedSuite returns a deterministic ladder of synthetic instances
// covering the configured size range.
func GeneratedSuite(cfg SuiteConfig) []Instance {
	cfg = cfg.withDefaults()
	var out []Instance
	for n := cfg.MinNodes; n <= cfg.MaxNodes; n += cfg.Step {
		for s := 0; s < cfg.SeedsPerSize; s++ {
			net := Generate(GenConfig{Nodes: n, Seed: int64(n*100 + s)})
			out = append(out, Instance{Name: net.Name(), Net: net, Dest: 0})
		}
	}
	return out
}

// Suite returns the full benchmark workload: the embedded real topologies
// plus the generated ladder. This is the stand-in for "all connected
// networks from the Topology Zoo benchmark".
func Suite(cfg SuiteConfig) []Instance {
	out := Embedded()
	out = append(out, GeneratedSuite(cfg)...)
	return out
}
