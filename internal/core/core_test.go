package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"syrep/internal/core"
	"syrep/internal/network"
	"syrep/internal/papernet"
	"syrep/internal/reduce"
	"syrep/internal/repair"
	"syrep/internal/routing"
	"syrep/internal/verify"
)

var ctx = context.Background()

// chainRing builds a small 2-edge-connected chain-rich topology.
func chainRing(t *testing.T, chainLen int) (*network.Network, network.NodeID) {
	t.Helper()
	b := network.NewBuilder("chainring")
	d := b.AddNode("d")
	na := b.AddNode("a")
	nb := b.AddNode("b")
	b.AddEdge(d, na)
	b.AddEdge(d, nb)
	b.AddEdge(na, nb)
	prev := na
	for i := 0; i < chainLen; i++ {
		cur := b.AddNode("c" + string(rune('a'+i)))
		b.AddEdge(prev, cur)
		prev = cur
	}
	b.AddEdge(prev, nb)
	return b.MustBuild(), d
}

// TestPipelineFlowAllStrategies: every strategy of Figure 7 produces a
// verified perfectly 2-resilient routing on the running example.
func TestPipelineFlowAllStrategies(t *testing.T) {
	n := papernet.Figure1()
	d := papernet.Figure1Dest(n)
	for _, s := range []core.Strategy{core.Baseline, core.HeuristicOnly, core.ReductionOnly, core.Combined} {
		t.Run(s.String(), func(t *testing.T) {
			r, rep, err := core.Synthesize(ctx, n, d, 2, core.Options{Strategy: s})
			if err != nil {
				t.Fatalf("Synthesize: %v", err)
			}
			if !verify.Resilient(r, 2) {
				t.Fatal("routing not 2-resilient")
			}
			if rep.Strategy != s || rep.K != 2 {
				t.Errorf("report mismatch: %+v", rep)
			}
			if rep.Elapsed <= 0 {
				t.Error("elapsed not recorded")
			}
		})
	}
}

// TestPipelineFlowChainTopology exercises the reduction path for real: the
// chain ring shrinks under the aggressive rule and the expansion gets
// repaired when needed.
func TestPipelineFlowChainTopology(t *testing.T) {
	n, d := chainRing(t, 6)
	r, rep, err := core.Synthesize(ctx, n, d, 2, core.Options{Strategy: core.Combined})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if !verify.Resilient(r, 2) {
		t.Fatal("routing not 2-resilient")
	}
	if !rep.Reduced || rep.NodesRemoved == 0 {
		t.Errorf("reduction not applied: %+v", rep)
	}
	if !r.Complete() {
		t.Error("routing incomplete")
	}
}

func TestPipelineSoundReduction(t *testing.T) {
	n, d := chainRing(t, 6)
	r, rep, err := core.Synthesize(ctx, n, d, 2, core.Options{
		Strategy:  core.Combined,
		Reduction: reduce.Sound,
	})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if !verify.Resilient(r, 2) {
		t.Fatal("routing not 2-resilient")
	}
	if rep.NodesRemoved != 4 {
		t.Errorf("NodesRemoved = %d, want 4", rep.NodesRemoved)
	}
}

func TestSynthesizeTimeout(t *testing.T) {
	n, d := chainRing(t, 6)
	_, _, err := core.Synthesize(ctx, n, d, 3, core.Options{
		Strategy: core.Baseline,
		Timeout:  time.Nanosecond,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
}

func TestSynthesizeUnknownStrategy(t *testing.T) {
	n := papernet.Figure1()
	_, _, err := core.Synthesize(ctx, n, 0, 2, core.Options{Strategy: core.Strategy(42)})
	if err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestStrategyString(t *testing.T) {
	tests := []struct {
		s    core.Strategy
		want string
	}{
		{core.Baseline, "baseline"},
		{core.HeuristicOnly, "heuristic"},
		{core.ReductionOnly, "reduction"},
		{core.Combined, "combined"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.s), got, tt.want)
		}
	}
	if core.Strategy(9).String() == "" {
		t.Error("unknown Strategy.String empty")
	}
}

// TestCoreRepair: the standalone repair entry point fortifies Figure 1b.
func TestCoreRepair(t *testing.T) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	out, err := core.Repair(ctx, r, 2, core.Options{})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if !verify.Resilient(out.Routing, 2) {
		t.Fatal("repaired routing not 2-resilient")
	}
}

// TestCoreRepairUnsolvable: a repair that cannot succeed maps to
// ErrUnsolvable.
func TestCoreRepairUnsolvable(t *testing.T) {
	// Reuse the unrepairable square from the repair package tests.
	b := network.NewBuilder("square")
	d := b.AddNode("d")
	x := b.AddNode("x")
	y := b.AddNode("y")
	z := b.AddNode("z")
	f0 := b.AddEdge(d, x)
	f1 := b.AddEdge(d, z)
	f2 := b.AddEdge(x, y)
	f3 := b.AddEdge(y, z)
	n := b.MustBuild()

	r := papernetSquareRouting(n, d, f0, f1, f2, f3, x, y, z)
	_, err := core.Repair(ctx, r, 1, core.Options{})
	if !errors.Is(err, core.ErrUnsolvable) {
		t.Errorf("err = %v, want ErrUnsolvable", err)
	}
}

func papernetSquareRouting(n *network.Network, d network.NodeID,
	f0, f1, f2, f3 network.EdgeID, x, y, z network.NodeID) *routing.Routing {
	r := routing.New(n, d)
	r.MustSet(n.Loopback(x), x, []network.EdgeID{f0, f2})
	r.MustSet(f2, x, []network.EdgeID{f0})
	r.MustSet(f0, x, []network.EdgeID{f2, f0})
	r.MustSet(n.Loopback(z), z, []network.EdgeID{f1, f3})
	r.MustSet(f3, z, []network.EdgeID{f1})
	r.MustSet(f1, z, []network.EdgeID{f3, f1})
	r.MustSet(n.Loopback(y), y, []network.EdgeID{f2, f3})
	r.MustSet(f2, y, []network.EdgeID{f3, f2})
	r.MustSet(f3, y, []network.EdgeID{f2, f3})
	return r
}

func TestSkipFinalVerify(t *testing.T) {
	n := papernet.Figure1()
	d := papernet.Figure1Dest(n)
	r, _, err := core.Synthesize(ctx, n, d, 1, core.Options{
		Strategy:        core.HeuristicOnly,
		SkipFinalVerify: true,
	})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	// The pipeline's own invariants still guarantee resilience.
	if !verify.Resilient(r, 1) {
		t.Error("routing not 1-resilient despite SkipFinalVerify")
	}
}

func TestReductionOnlySoundRule(t *testing.T) {
	n, d := chainRing(t, 5)
	r, rep, err := core.Synthesize(ctx, n, d, 1, core.Options{
		Strategy:  core.ReductionOnly,
		Reduction: reduce.Sound,
	})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if !verify.Resilient(r, 1) {
		t.Fatal("routing not 1-resilient")
	}
	if !rep.Reduced {
		t.Error("reduction not reported")
	}
}

func TestRepairGradualViaCore(t *testing.T) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	out, err := core.Repair(ctx, r, 2, core.Options{RepairStrategy: repair.Gradual})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if !verify.Resilient(out.Routing, 2) {
		t.Fatal("gradual core repair not 2-resilient")
	}
}
