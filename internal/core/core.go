// Package core assembles SyRep's modular pipeline (Figure 6 of the paper):
//
//	topology ──► structural reduction ──► heuristic generator ──►
//	verify/repair on the reduced net ──► expansion ──►
//	verify/repair on the original net ──► perfectly k-resilient routing
//
// alongside the baseline (full BDD synthesis from scratch, as in [26]) and
// the single-technique strategies the paper evaluates in Figure 7.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"syrep/internal/encode"
	"syrep/internal/heuristic"
	"syrep/internal/network"
	"syrep/internal/reduce"
	"syrep/internal/repair"
	"syrep/internal/routing"
	"syrep/internal/synth"
	"syrep/internal/verify"
)

// Strategy selects how Synthesize computes the routing.
type Strategy int

const (
	// Baseline is full BDD synthesis from scratch on the original network
	// (the SyPer approach of [26]).
	Baseline Strategy = iota + 1
	// HeuristicOnly runs the heuristic generator on the original network
	// and repairs it.
	HeuristicOnly
	// ReductionOnly reduces the network aggressively, synthesises from
	// scratch on the reduced network, expands, and repairs.
	ReductionOnly
	// Combined is the full SyRep pipeline: aggressive reduction + heuristic
	// + repair on the reduced network, expansion, then repair on the
	// original network. This is the paper's headline method.
	Combined
)

// String returns the strategy name as used in the paper's plots.
func (s Strategy) String() string {
	switch s {
	case Baseline:
		return "baseline"
	case HeuristicOnly:
		return "heuristic"
	case ReductionOnly:
		return "reduction"
	case Combined:
		return "combined"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ErrUnsolvable is returned when the selected strategy cannot produce a
// perfectly k-resilient routing for the instance (which may still be
// solvable by another strategy, or genuinely have no solution).
var ErrUnsolvable = errors.New("core: strategy could not produce a perfectly k-resilient routing")

// Options configures a synthesis run.
type Options struct {
	// Strategy defaults to Combined.
	Strategy Strategy
	// Timeout bounds the run (0 = none); on expiry the run returns
	// context.DeadlineExceeded.
	Timeout time.Duration
	// Reduction selects the reduction rule for strategies that reduce
	// (default Aggressive, as in the paper's architecture).
	Reduction reduce.Rule
	// Encode tunes the BDD engine.
	Encode encode.Options
	// RepairStrategy selects the suspicious-entry removal policy.
	RepairStrategy repair.Strategy
	// SkipFinalVerify disables the final independent verification pass
	// (the pipeline's own invariants make it redundant; it is kept on by
	// default as a safety net).
	SkipFinalVerify bool
}

func (o Options) withDefaults() Options {
	if o.Strategy == 0 {
		o.Strategy = Combined
	}
	if o.Reduction == 0 {
		o.Reduction = reduce.Aggressive
	}
	return o
}

// Report describes a synthesis run for the benchmark harness.
type Report struct {
	Strategy Strategy
	K        int
	// Elapsed is the wall-clock time of the run.
	Elapsed time.Duration
	// Reduced tells whether a structural reduction was applied, and its
	// effect.
	Reduced               bool
	NodesRemoved          int
	ReducedRepairUsed     bool
	ExpansionRepairUsed   bool
	ExpansionResilient    bool
	HeuristicWasResilient bool
}

// Synthesize produces a perfectly k-resilient routing for dest on net using
// the configured strategy. The returned routing is always re-verified
// unless SkipFinalVerify is set.
func Synthesize(ctx context.Context, net *network.Network, dest network.NodeID, k int, opts Options) (*routing.Routing, *Report, error) {
	opts = opts.withDefaults()
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	start := time.Now()
	rep := &Report{Strategy: opts.Strategy, K: k}

	var (
		r   *routing.Routing
		err error
	)
	switch opts.Strategy {
	case Baseline:
		r, err = runBaseline(ctx, net, dest, k, opts)
	case HeuristicOnly:
		r, err = runHeuristic(ctx, net, dest, k, opts, rep)
	case ReductionOnly:
		r, err = runReduction(ctx, net, dest, k, opts, rep)
	case Combined:
		r, err = runCombined(ctx, net, dest, k, opts, rep)
	default:
		return nil, nil, fmt.Errorf("core: unknown strategy %v", opts.Strategy)
	}
	rep.Elapsed = time.Since(start)
	if err != nil {
		return nil, rep, err
	}

	if !opts.SkipFinalVerify {
		ok, verr := verify.Check(ctx, r, k, verify.Options{StopAtFirst: true})
		if verr != nil {
			return nil, rep, verr
		}
		if !ok.Resilient {
			return nil, rep, fmt.Errorf("core: internal error: produced routing failed final verification")
		}
	}
	return r, rep, nil
}

// Repair fortifies an existing routing to perfect k-resilience — the
// paper's standalone repair use case (an operator's existing data plane is
// minimally modified).
func Repair(ctx context.Context, r *routing.Routing, k int, opts Options) (*repair.Outcome, error) {
	opts = opts.withDefaults()
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	out, err := repair.Repair(ctx, r, k, repair.Options{
		Strategy: opts.RepairStrategy,
		Encode:   opts.Encode,
	})
	if err != nil {
		if errors.Is(err, repair.ErrUnrepairable) {
			return nil, fmt.Errorf("%w: %v", ErrUnsolvable, err)
		}
		return nil, err
	}
	return out, nil
}

func runBaseline(ctx context.Context, net *network.Network, dest network.NodeID, k int, opts Options) (*routing.Routing, error) {
	sol, err := synth.Baseline(ctx, net, dest, k, opts.Encode)
	if err != nil {
		if errors.Is(err, encode.ErrUnrepairable) {
			return nil, fmt.Errorf("%w: no perfectly %d-resilient routing", ErrUnsolvable, k)
		}
		return nil, err
	}
	return sol.Routing, nil
}

func runHeuristic(ctx context.Context, net *network.Network, dest network.NodeID, k int, opts Options, rep *Report) (*routing.Routing, error) {
	h, err := heuristic.Generate(net, dest)
	if err != nil {
		return nil, err
	}
	out, err := repair.Repair(ctx, h, k, repair.Options{Strategy: opts.RepairStrategy, Escalate: true, Encode: opts.Encode})
	if err != nil {
		if errors.Is(err, repair.ErrUnrepairable) {
			return nil, fmt.Errorf("%w: heuristic routing unrepairable", ErrUnsolvable)
		}
		return nil, err
	}
	rep.HeuristicWasResilient = out.AlreadyResilient
	return out.Routing, nil
}

func runReduction(ctx context.Context, net *network.Network, dest network.NodeID, k int, opts Options, rep *Report) (*routing.Routing, error) {
	rd, err := reduce.Apply(net, dest, opts.Reduction)
	if err != nil {
		return nil, err
	}
	rep.Reduced = true
	rep.NodesRemoved = rd.NumRemoved()

	sol, err := synth.Baseline(ctx, rd.Reduced, rd.DestReduced, k, opts.Encode)
	if err != nil {
		if errors.Is(err, encode.ErrUnrepairable) {
			return nil, fmt.Errorf("%w: reduced network unsynthesisable", ErrUnsolvable)
		}
		return nil, err
	}
	return expandAndRepair(ctx, rd, sol.Routing, k, opts, rep)
}

func runCombined(ctx context.Context, net *network.Network, dest network.NodeID, k int, opts Options, rep *Report) (*routing.Routing, error) {
	rd, err := reduce.Apply(net, dest, opts.Reduction)
	if err != nil {
		return nil, err
	}
	rep.Reduced = true
	rep.NodesRemoved = rd.NumRemoved()

	h, err := heuristic.Generate(rd.Reduced, rd.DestReduced)
	if err != nil {
		return nil, err
	}
	out, err := repair.Repair(ctx, h, k, repair.Options{Strategy: opts.RepairStrategy, Escalate: true, Encode: opts.Encode})
	if err != nil {
		if errors.Is(err, repair.ErrUnrepairable) {
			return nil, fmt.Errorf("%w: reduced heuristic routing unrepairable", ErrUnsolvable)
		}
		return nil, err
	}
	rep.HeuristicWasResilient = out.AlreadyResilient
	rep.ReducedRepairUsed = !out.AlreadyResilient
	return expandAndRepair(ctx, rd, out.Routing, k, opts, rep)
}

// expandAndRepair lifts the reduced routing to the original network and
// repairs it there if the expansion lost resilience (always possible with
// the aggressive rule).
func expandAndRepair(ctx context.Context, rd *reduce.Reduction, reduced *routing.Routing, k int, opts Options, rep *Report) (*routing.Routing, error) {
	expanded, err := rd.Expand(reduced)
	if err != nil {
		return nil, err
	}
	out, err := repair.Repair(ctx, expanded, k, repair.Options{Strategy: opts.RepairStrategy, Escalate: true, Encode: opts.Encode})
	if err != nil {
		if errors.Is(err, repair.ErrUnrepairable) {
			return nil, fmt.Errorf("%w: expanded routing unrepairable", ErrUnsolvable)
		}
		return nil, err
	}
	rep.ExpansionResilient = out.AlreadyResilient
	rep.ExpansionRepairUsed = !out.AlreadyResilient
	return out.Routing, nil
}
