// Package core assembles SyRep's modular pipeline (Figure 6 of the paper):
//
//	topology ──► structural reduction ──► heuristic generator ──►
//	verify/repair on the reduced net ──► expansion ──►
//	verify/repair on the original net ──► perfectly k-resilient routing
//
// alongside the baseline (full BDD synthesis from scratch, as in [26]) and
// the single-technique strategies the paper evaluates in Figure 7.
//
// The pipeline itself lives in internal/resilience, which supervises every
// run as an anytime computation: per-stage deadline budgets, a node-limit
// escalation ladder, checkpointing with typed *resilience.Partial results
// on timeout or memout, and panic-to-error conversion at the boundary.
// This package re-exports the supervisor under its historical names so that
// existing callers keep working unchanged.
package core

import (
	"context"

	"syrep/internal/network"
	"syrep/internal/repair"
	"syrep/internal/resilience"
	"syrep/internal/routing"
)

// Strategy selects how Synthesize computes the routing.
type Strategy = resilience.Strategy

// Synthesis strategies (paper Figure 7).
const (
	Baseline      = resilience.Baseline
	HeuristicOnly = resilience.HeuristicOnly
	ReductionOnly = resilience.ReductionOnly
	Combined      = resilience.Combined
)

// ErrUnsolvable is returned when the selected strategy cannot produce a
// perfectly k-resilient routing for the instance.
var ErrUnsolvable = resilience.ErrUnsolvable

// Options configures a synthesis run.
type Options = resilience.Options

// Report describes a synthesis run for the benchmark harness.
type Report = resilience.Report

// Partial is the typed anytime result returned (as an error) when a run hits
// its deadline or memory budget after checkpointing a usable routing.
type Partial = resilience.Partial

// AsPartial extracts the anytime supervisor's typed partial result from an
// error chain.
func AsPartial(err error) (*Partial, bool) { return resilience.AsPartial(err) }

// Synthesize produces a perfectly k-resilient routing for dest on net using
// the configured strategy. The returned routing is always re-verified
// unless SkipFinalVerify is set. On timeout or memout the error may be a
// *Partial carrying the best checkpointed routing.
func Synthesize(ctx context.Context, net *network.Network, dest network.NodeID, k int, opts Options) (*routing.Routing, *Report, error) {
	return resilience.Synthesize(ctx, net, dest, k, opts)
}

// Repair fortifies an existing routing to perfect k-resilience — the
// paper's standalone repair use case (an operator's existing data plane is
// minimally modified).
func Repair(ctx context.Context, r *routing.Routing, k int, opts Options) (*repair.Outcome, error) {
	return resilience.Repair(ctx, r, k, opts)
}

// BatchOptions configures SynthesizeAll.
type BatchOptions = resilience.BatchOptions

// DestResult is one destination's outcome within a batch.
type DestResult = resilience.DestResult

// BatchReport summarises a SynthesizeAll run.
type BatchReport = resilience.BatchReport

// SharedResources bundles the destination-independent state a batch shares
// across its per-destination runs.
type SharedResources = resilience.SharedResources

// SynthesizeAll synthesizes a routing for every requested destination of
// net (all nodes by default), fanning out across a bounded worker pool
// while sharing the destination-independent reduction work and a warm BDD
// manager pool. Per-destination failures land in their DestResult and never
// fail the batch.
func SynthesizeAll(ctx context.Context, net *network.Network, k int, opts BatchOptions) ([]DestResult, *BatchReport, error) {
	return resilience.SynthesizeAll(ctx, net, k, opts)
}
