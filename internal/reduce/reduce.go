// Package reduce implements the structural reduction rules of Section IV-B
// of the SyRep paper: chains of degree-2 nodes are contracted into single
// edges, a resilient routing is computed on the smaller network, and the
// routing is expanded back to the original network.
//
// Two rules are provided. The sound chain-reduction only removes a degree-2
// node when both its neighbours are degree-2 as well (so every chain keeps
// two interior nodes), which preserves perfect k-resilience under expansion
// (Theorem 1). The aggressive chain-reduction removes every degree-2 node
// whose neighbours are distinct from each other and from the destination;
// it shrinks typical ISP topologies much further but offers no guarantee —
// SyRep repairs the expanded routing when it is not resilient.
package reduce

import (
	"context"
	"fmt"

	"syrep/internal/network"
	"syrep/internal/routing"
)

// Rule selects the reduction rule.
type Rule int

const (
	// Sound is the chain-reduction of Theorem 1 (resilience-preserving).
	Sound Rule = iota + 1
	// Aggressive removes every eligible degree-2 node (no guarantee).
	Aggressive
)

// String returns the rule name.
func (r Rule) String() string {
	switch r {
	case Sound:
		return "sound"
	case Aggressive:
		return "aggressive"
	default:
		return fmt.Sprintf("Rule(%d)", int(r))
	}
}

// segment is a contracted path of original edges, oriented from endpoint a
// to endpoint b. Interior nodes (all removed) are listed a-side first;
// edges[i] connects the i-th to the (i+1)-th node of the path a, interior...,
// b.
type segment struct {
	a, b     network.NodeID
	edges    []network.EdgeID
	interior []network.NodeID
}

// Reduction is the outcome of applying a rule to a network: the reduced
// network plus the provenance needed to expand routings back.
type Reduction struct {
	// Original and Reduced are the input and contracted networks.
	Original *network.Network
	Reduced  *network.Network
	// Rule is the rule that was applied.
	Rule Rule
	// Dest is the destination on the original network; DestReduced is its
	// image (the destination is never removed).
	Dest        network.NodeID
	DestReduced network.NodeID

	// segs maps each reduced edge id to its original path.
	segs []segment
	// toReduced maps original surviving node ids to reduced ids (NoNode for
	// removed nodes).
	toReduced []network.NodeID
	// toOriginal maps reduced node ids back to original ids.
	toOriginal []network.NodeID
	// removed lists the removed original nodes.
	removed []network.NodeID
}

// NumRemoved returns how many nodes the reduction eliminated.
func (rd *Reduction) NumRemoved() int { return len(rd.removed) }

// RemovedNodes returns the removed original node ids.
func (rd *Reduction) RemovedNodes() []network.NodeID {
	return append([]network.NodeID(nil), rd.removed...)
}

// Apply contracts net per the rule, keeping dest intact. Cancellation is
// polled once per contraction sweep and once per node inside a sweep, so a
// reduction on a large topology aborts promptly with ctx.Err().
func Apply(ctx context.Context, net *network.Network, dest network.NodeID, rule Rule) (*Reduction, error) {
	if rule != Sound && rule != Aggressive {
		return nil, fmt.Errorf("reduce: unknown rule %v", rule)
	}
	return apply(ctx, net, dest, rule, nil)
}

// apply is the contraction fixpoint. cands lists the nodes each sweep visits
// in order; nil means every node. Restricting the sweep is sound because a
// node's degree in the live segment graph never changes while it is alive
// (each merge swaps one incident segment for another at the endpoints), so
// only nodes of original degree 2 can ever become eligible — see Shared.
func apply(ctx context.Context, net *network.Network, dest network.NodeID, rule Rule, cands []network.NodeID) (*Reduction, error) {
	if cands == nil {
		cands = make([]network.NodeID, net.NumNodes())
		for i := range cands {
			cands[i] = network.NodeID(i)
		}
	}
	// Live segment graph, initialised with one segment per original edge.
	segs := make([]segment, 0, net.NumRealEdges())
	alive := make([]bool, 0, net.NumRealEdges())
	incident := make([][]int, net.NumNodes()) // node -> live segment indices
	for _, e := range net.RealEdges() {
		u, v := net.Endpoints(e)
		idx := len(segs)
		segs = append(segs, segment{a: u, b: v, edges: []network.EdgeID{e}})
		alive = append(alive, true)
		incident[u] = append(incident[u], idx)
		incident[v] = append(incident[v], idx)
	}
	nodeAlive := make([]bool, net.NumNodes())
	for i := range nodeAlive {
		nodeAlive[i] = true
	}

	otherEnd := func(si int, v network.NodeID) network.NodeID {
		if segs[si].a == v {
			return segs[si].b
		}
		return segs[si].a
	}
	degree := func(v network.NodeID) int { return len(incident[v]) }

	eligible := func(w network.NodeID) bool {
		if !nodeAlive[w] || w == dest || degree(w) != 2 {
			return false
		}
		s1, s2 := incident[w][0], incident[w][1]
		if s1 == s2 {
			return false // both endpoints of one segment: a cycle at w
		}
		na, nb := otherEnd(s1, w), otherEnd(s2, w)
		if na == nb || na == w || nb == w || na == dest || nb == dest {
			return false
		}
		if rule == Sound && (degree(na) != 2 || degree(nb) != 2) {
			return false
		}
		return true
	}

	removeFromIncident := func(v network.NodeID, si int) {
		list := incident[v]
		for i, x := range list {
			if x == si {
				incident[v] = append(list[:i], list[i+1:]...)
				return
			}
		}
	}

	// orient returns the segment content oriented so that it starts at v.
	orient := func(si int, v network.NodeID) segment {
		s := segs[si]
		if s.a == v {
			return s
		}
		rev := segment{a: s.b, b: s.a}
		for i := len(s.edges) - 1; i >= 0; i-- {
			rev.edges = append(rev.edges, s.edges[i])
		}
		for i := len(s.interior) - 1; i >= 0; i-- {
			rev.interior = append(rev.interior, s.interior[i])
		}
		return rev
	}

	var removed []network.NodeID
	for changed := true; changed; {
		changed = false
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, w := range cands {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if !eligible(w) {
				continue
			}
			s1, s2 := incident[w][0], incident[w][1]
			left := orient(s1, w)  // w ... a-side
			right := orient(s2, w) // w ... b-side
			merged := segment{a: left.b, b: right.b}
			// left oriented w->a; flip to a->w.
			flip := orient(s1, left.b)
			merged.edges = append(merged.edges, flip.edges...)
			merged.interior = append(merged.interior, flip.interior...)
			merged.interior = append(merged.interior, w)
			merged.edges = append(merged.edges, right.edges...)
			merged.interior = append(merged.interior, right.interior...)

			idx := len(segs)
			segs = append(segs, merged)
			alive = append(alive, true)
			alive[s1], alive[s2] = false, false
			removeFromIncident(merged.a, s1)
			removeFromIncident(merged.b, s2)
			incident[merged.a] = append(incident[merged.a], idx)
			incident[merged.b] = append(incident[merged.b], idx)
			incident[w] = nil
			nodeAlive[w] = false
			removed = append(removed, w)
			changed = true
		}
	}

	// Build the reduced network.
	b := network.NewBuilder(net.Name() + "-" + rule.String())
	toReduced := make([]network.NodeID, net.NumNodes())
	var toOriginal []network.NodeID
	for v := network.NodeID(0); int(v) < net.NumNodes(); v++ {
		if nodeAlive[v] {
			toReduced[v] = b.AddNode(net.NodeName(v))
			toOriginal = append(toOriginal, v)
		} else {
			toReduced[v] = network.NoNode
		}
	}
	var keptSegs []segment
	for i, s := range segs {
		if !alive[i] {
			continue
		}
		name := net.EdgeName(s.edges[0])
		if len(s.edges) > 1 {
			name = fmt.Sprintf("chain_%s_%s", net.NodeName(s.a), net.NodeName(s.b))
		}
		b.AddNamedEdge(name, toReduced[s.a], toReduced[s.b])
		keptSegs = append(keptSegs, s)
	}
	reduced, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("reduce: building reduced network: %w", err)
	}
	return &Reduction{
		Original:    net,
		Reduced:     reduced,
		Rule:        rule,
		Dest:        dest,
		DestReduced: toReduced[dest],
		segs:        keptSegs,
		toReduced:   toReduced,
		toOriginal:  toOriginal,
		removed:     removed,
	}, nil
}

// edgeAt maps a reduced edge to the original edge of its path incident to
// the original node v (which must be one of the path's endpoints).
func (rd *Reduction) edgeAt(reducedEdge network.EdgeID, v network.NodeID) (network.EdgeID, error) {
	s := rd.segs[reducedEdge]
	switch v {
	case s.a:
		return s.edges[0], nil
	case s.b:
		return s.edges[len(s.edges)-1], nil
	}
	return network.NoEdge, fmt.Errorf("reduce: node %d is not an endpoint of reduced edge %d", v, reducedEdge)
}

// Expand lifts a routing on the reduced network back to the original
// network (Section IV-B): entries of surviving nodes are translated edge by
// edge; removed chain nodes get pass-through entries plus a loop-back entry
// whose direction follows the chain endpoint's default (sound rule) or the
// original shortest path to the destination (aggressive rule).
//
// If the reduced routing is perfectly k-resilient and the reduction used
// the Sound rule, the expanded routing is perfectly k-resilient on the
// original network (Theorem 1).
func (rd *Reduction) Expand(r *routing.Routing) (*routing.Routing, error) {
	if r.Network() != rd.Reduced {
		return nil, fmt.Errorf("reduce: routing is not on the reduced network")
	}
	if r.Dest() != rd.DestReduced {
		return nil, fmt.Errorf("reduce: routing destination mismatch")
	}
	if r.NumHoles() > 0 {
		return nil, fmt.Errorf("reduce: cannot expand a routing with holes")
	}
	orig := rd.Original
	out := routing.New(orig, rd.Dest)

	// Translate surviving nodes' entries.
	for _, key := range r.Keys() {
		prio, _ := r.Get(key.In, key.At)
		v := rd.toOriginal[key.At]
		var in network.EdgeID
		if rd.Reduced.IsLoopback(key.In) {
			in = orig.Loopback(v)
		} else {
			e, err := rd.edgeAt(key.In, v)
			if err != nil {
				return nil, err
			}
			in = e
		}
		mapped := make([]network.EdgeID, 0, len(prio))
		for _, e := range prio {
			oe, err := rd.edgeAt(e, v)
			if err != nil {
				return nil, err
			}
			mapped = append(mapped, oe)
		}
		if err := out.Set(in, v, mapped); err != nil {
			return nil, fmt.Errorf("reduce: expanding entry %v: %w", key, err)
		}
	}

	// Synthesise entries for removed chain nodes.
	parent, _ := orig.ShortestPathTree(rd.Dest)
	for segID, s := range rd.segs {
		if len(s.interior) == 0 {
			continue
		}
		towardA, err := rd.chainDirection(r, network.EdgeID(segID), s)
		if err != nil {
			return nil, err
		}
		// Path nodes: a, interior..., b; edges[i] connects path[i], path[i+1].
		for j, w := range s.interior {
			eL := s.edges[j]   // toward a
			eR := s.edges[j+1] // toward b
			// Pass-through entries: continue in the travel direction, bounce
			// back as fallback.
			if err := out.Set(eL, w, []network.EdgeID{eR, eL}); err != nil {
				return nil, fmt.Errorf("reduce: chain entry: %w", err)
			}
			if err := out.Set(eR, w, []network.EdgeID{eL, eR}); err != nil {
				return nil, fmt.Errorf("reduce: chain entry: %w", err)
			}
			first, second := eR, eL
			switch rd.Rule {
			case Sound:
				if towardA {
					first, second = eL, eR
				}
			case Aggressive:
				// Follow the original shortest path to the destination.
				if parent[w] == eL {
					first, second = eL, eR
				}
			}
			if err := out.Set(orig.Loopback(w), w, []network.EdgeID{first, second}); err != nil {
				return nil, fmt.Errorf("reduce: chain loop-back entry: %w", err)
			}
		}
	}
	return out, nil
}

// chainDirection decides (for the sound rule) whether removed nodes of the
// segment forward toward endpoint a: true when a's loop-back entry points
// away from the chain (paper: "the default edge of v1 points to the left").
func (rd *Reduction) chainDirection(r *routing.Routing, segEdge network.EdgeID, s segment) (bool, error) {
	if rd.Rule != Sound {
		return false, nil
	}
	aRed := rd.toReduced[s.a]
	prio, ok := r.Get(rd.Reduced.Loopback(aRed), aRed)
	if !ok || len(prio) == 0 {
		return false, fmt.Errorf("reduce: reduced routing lacks a loop-back entry at chain endpoint %s",
			rd.Original.NodeName(s.a))
	}
	// If a forwards into the chain, travel direction is toward b; otherwise
	// the chain forwards toward a.
	return prio[0] != segEdge, nil
}
