package reduce

import (
	"context"
	"fmt"

	"syrep/internal/network"
)

// Shared precomputes the destination-independent part of chain reduction so
// a batch run over all destinations does not redo it N times.
//
// Almost everything about the contraction is destination-independent: the
// rules only ever remove nodes of degree 2 *in the live segment graph*, and
// that degree is invariant while a node stays alive — every merge removes
// one segment incident to an endpoint and adds the merged replacement, and
// the contracted node itself drops to degree 0. A node whose original degree
// is not 2 therefore never becomes eligible, for any destination. The
// candidate sweep list (original-degree-2 nodes, in id order) is computed
// once per network; ForDest replays the exact fixpoint of Apply restricted
// to that list, so its Reduction is identical to Apply's for every
// destination — the differential test in shared_test.go pins this.
type Shared struct {
	net   *network.Network
	rule  Rule
	cands []network.NodeID
}

// NewShared precomputes the candidate set for contracting net under rule.
func NewShared(net *network.Network, rule Rule) (*Shared, error) {
	if rule != Sound && rule != Aggressive {
		return nil, fmt.Errorf("reduce: unknown rule %v", rule)
	}
	// Count segment-graph degrees exactly as apply initialises them: one
	// increment per real-edge endpoint (a self-loop counts twice).
	deg := make([]int, net.NumNodes())
	for _, e := range net.RealEdges() {
		u, v := net.Endpoints(e)
		deg[u]++
		deg[v]++
	}
	var cands []network.NodeID
	for v, d := range deg {
		if d == 2 {
			cands = append(cands, network.NodeID(v))
		}
	}
	return &Shared{net: net, rule: rule, cands: cands}, nil
}

// Network returns the network the candidates were computed for.
func (s *Shared) Network() *network.Network { return s.net }

// Rule returns the contraction rule the candidates were computed for.
func (s *Shared) Rule() Rule { return s.rule }

// NumCandidates returns how many nodes can ever be contracted (for any
// destination).
func (s *Shared) NumCandidates() int { return len(s.cands) }

// ForDest contracts the network for one destination, reusing the shared
// candidate set. The result is identical to Apply(ctx, net, dest, rule).
func (s *Shared) ForDest(ctx context.Context, dest network.NodeID) (*Reduction, error) {
	return apply(ctx, s.net, dest, s.rule, s.cands)
}
