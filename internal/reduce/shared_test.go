package reduce

// In-package differential test: Shared.ForDest must reproduce Apply
// byte-for-byte, including the unexported provenance (segments, node maps,
// removal order) that Expand depends on.

import (
	"context"
	"reflect"
	"testing"

	"syrep/internal/network"
	"syrep/internal/topozoo"
)

func sameReduction(t *testing.T, a, b *Reduction, what string) {
	t.Helper()
	if a.Reduced.Fingerprint() != b.Reduced.Fingerprint() {
		t.Fatalf("%s: reduced networks differ", what)
	}
	if a.DestReduced != b.DestReduced {
		t.Fatalf("%s: DestReduced %d vs %d", what, a.DestReduced, b.DestReduced)
	}
	if !reflect.DeepEqual(a.segs, b.segs) {
		t.Fatalf("%s: segment provenance differs", what)
	}
	if !reflect.DeepEqual(a.toReduced, b.toReduced) {
		t.Fatalf("%s: toReduced differs", what)
	}
	if !reflect.DeepEqual(a.toOriginal, b.toOriginal) {
		t.Fatalf("%s: toOriginal differs", what)
	}
	if !reflect.DeepEqual(a.removed, b.removed) {
		t.Fatalf("%s: removal order differs", what)
	}
}

// TestSharedForDestMatchesApply sweeps every embedded topology, both rules,
// every destination.
func TestSharedForDestMatchesApply(t *testing.T) {
	ctx := context.Background()
	for _, inst := range topozoo.Embedded() {
		for _, rule := range []Rule{Sound, Aggressive} {
			sh, err := NewShared(inst.Net, rule)
			if err != nil {
				t.Fatal(err)
			}
			for dest := network.NodeID(0); int(dest) < inst.Net.NumNodes(); dest++ {
				want, err := Apply(ctx, inst.Net, dest, rule)
				if err != nil {
					t.Fatalf("%s/%v dest %d: Apply: %v", inst.Name, rule, dest, err)
				}
				got, err := sh.ForDest(ctx, dest)
				if err != nil {
					t.Fatalf("%s/%v dest %d: ForDest: %v", inst.Name, rule, dest, err)
				}
				sameReduction(t, want, got, inst.Name+"/"+rule.String())
			}
		}
	}
}

// TestSharedCandidatesAreDegree2 checks the precomputed candidate set is
// exactly the degree-2 nodes, and that Apply never removes anything outside
// it (the invariant the restriction rests on).
func TestSharedCandidatesAreDegree2(t *testing.T) {
	ctx := context.Background()
	for _, inst := range topozoo.Embedded() {
		sh, err := NewShared(inst.Net, Aggressive)
		if err != nil {
			t.Fatal(err)
		}
		inCands := make(map[network.NodeID]bool, len(sh.cands))
		for _, v := range sh.cands {
			inCands[v] = true
		}
		for dest := network.NodeID(0); int(dest) < inst.Net.NumNodes(); dest++ {
			rd, err := Apply(ctx, inst.Net, dest, Aggressive)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range rd.RemovedNodes() {
				if !inCands[w] {
					t.Fatalf("%s dest %d: Apply removed %s, which is not a shared candidate",
						inst.Name, dest, inst.Net.NodeName(w))
				}
			}
		}
	}
}

func TestNewSharedUnknownRule(t *testing.T) {
	if _, err := NewShared(topozoo.Embedded()[0].Net, Rule(9)); err == nil {
		t.Fatal("want error for unknown rule")
	}
}

func TestSharedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sh, err := NewShared(topozoo.Embedded()[0].Net, Sound)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.ForDest(ctx, 0); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
