package reduce_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"syrep/internal/encode"
	"syrep/internal/heuristic"
	"syrep/internal/network"
	"syrep/internal/reduce"
	"syrep/internal/repair"
	"syrep/internal/routing"
	"syrep/internal/verify"
)

var ctx = context.Background()

// chainRing builds a 2-edge-connected "ring with a long chain": a dense core
// (triangle d, a, b with a chord) plus a chain of chainLen nodes connecting
// a back to b.
func chainRing(chainLen int) (*network.Network, network.NodeID) {
	b := network.NewBuilder("chainring")
	d := b.AddNode("d")
	na := b.AddNode("a")
	nb := b.AddNode("b")
	b.AddEdge(d, na)
	b.AddEdge(d, nb)
	b.AddEdge(na, nb)
	prev := na
	for i := 0; i < chainLen; i++ {
		cur := b.AddNode("c" + string(rune('0'+i%10)) + string(rune('a'+i/10)))
		b.AddEdge(prev, cur)
		prev = cur
	}
	b.AddEdge(prev, nb)
	return b.MustBuild(), d
}

func TestSoundReductionKeepsTwoInteriorNodes(t *testing.T) {
	n, d := chainRing(6) // chain of 6 interior nodes => 7 chain edges
	rd, err := reduce.Apply(context.Background(), n, d, reduce.Sound)
	if err != nil {
		t.Fatal(err)
	}
	// The chain has anchors a and b (degree 3); the sound rule keeps the two
	// outermost interior nodes, removing 4.
	if got := rd.NumRemoved(); got != 4 {
		t.Errorf("removed %d nodes, want 4", got)
	}
	if got, want := rd.Reduced.NumNodes(), n.NumNodes()-4; got != want {
		t.Errorf("reduced nodes = %d, want %d", got, want)
	}
	// Edges: each removal eliminates one edge.
	if got, want := rd.Reduced.NumRealEdges(), n.NumRealEdges()-4; got != want {
		t.Errorf("reduced edges = %d, want %d", got, want)
	}
	if !rd.Reduced.Connected() {
		t.Error("reduced network disconnected")
	}
}

func TestAggressiveReductionRemovesWholeChain(t *testing.T) {
	n, d := chainRing(6)
	rd, err := reduce.Apply(context.Background(), n, d, reduce.Aggressive)
	if err != nil {
		t.Fatal(err)
	}
	if got := rd.NumRemoved(); got != 6 {
		t.Errorf("removed %d nodes, want 6 (entire chain)", got)
	}
	// The chain collapses into one edge a-b, parallel to the existing one.
	if got, want := rd.Reduced.NumNodes(), 3; got != want {
		t.Errorf("reduced nodes = %d, want %d", got, want)
	}
	if got, want := rd.Reduced.NumRealEdges(), 4; got != want {
		t.Errorf("reduced edges = %d, want %d", got, want)
	}
}

func TestReductionProtectsDestinationNeighbours(t *testing.T) {
	// Pure cycle: both rules stop at the triangle around the destination.
	b := network.NewBuilder("cycle")
	d := b.AddNode("d")
	prev := d
	for i := 0; i < 7; i++ {
		cur := b.AddNode("x" + string(rune('1'+i)))
		b.AddEdge(prev, cur)
		prev = cur
	}
	b.AddEdge(prev, d)
	n := b.MustBuild()

	for _, rule := range []reduce.Rule{reduce.Sound, reduce.Aggressive} {
		rd, err := reduce.Apply(context.Background(), n, 0, rule)
		if err != nil {
			t.Fatal(err)
		}
		if got := rd.Reduced.NumNodes(); got != 3 {
			t.Errorf("%v: reduced cycle to %d nodes, want 3", rule, got)
		}
		dRed := rd.Reduced.NodeByName("d")
		if dRed != rd.DestReduced {
			t.Errorf("%v: destination mapping broken", rule)
		}
	}
}

func TestNoReductionOnDenseGraph(t *testing.T) {
	// K4 has no degree-2 nodes: nothing to remove.
	b := network.NewBuilder("k4")
	var vs []network.NodeID
	for i := 0; i < 4; i++ {
		vs = append(vs, b.AddNode(string(rune('a'+i))))
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(vs[i], vs[j])
		}
	}
	n := b.MustBuild()
	rd, err := reduce.Apply(context.Background(), n, 0, reduce.Aggressive)
	if err != nil {
		t.Fatal(err)
	}
	if rd.NumRemoved() != 0 {
		t.Errorf("removed %d nodes from K4", rd.NumRemoved())
	}
	if rd.Reduced.NumRealEdges() != 6 {
		t.Errorf("reduced K4 edges = %d", rd.Reduced.NumRealEdges())
	}
}

func TestApplyUnknownRule(t *testing.T) {
	n, d := chainRing(3)
	if _, err := reduce.Apply(context.Background(), n, d, reduce.Rule(0)); err == nil {
		t.Error("Apply with invalid rule succeeded")
	}
}

func TestRuleString(t *testing.T) {
	if reduce.Sound.String() != "sound" || reduce.Aggressive.String() != "aggressive" {
		t.Error("Rule.String broken")
	}
	if reduce.Rule(7).String() == "" {
		t.Error("unknown Rule.String empty")
	}
}

// expandResilient computes a k-resilient routing on the reduced network
// (heuristic, repaired if needed) and expands it.
func expandResilient(t *testing.T, rd *reduce.Reduction, k int) *routing.Routing {
	t.Helper()
	r, err := heuristic.Generate(context.Background(), rd.Reduced, rd.DestReduced)
	if err != nil {
		t.Fatalf("heuristic on reduced: %v", err)
	}
	out, err := repair.Repair(ctx, r, k, repair.Options{})
	if err != nil {
		t.Fatalf("repair on reduced: %v", err)
	}
	if !verify.Resilient(out.Routing, k) {
		t.Fatal("reduced routing not resilient")
	}
	expanded, err := rd.Expand(out.Routing)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	return expanded
}

// TestTheorem1SoundExpansionPreservesResilience is the paper's Theorem 1 as
// an executable property: a perfectly k-resilient routing on the
// sound-reduced network expands to a perfectly k-resilient routing on the
// original.
func TestTheorem1SoundExpansionPreservesResilience(t *testing.T) {
	for _, chainLen := range []int{4, 5, 7} {
		n, d := chainRing(chainLen)
		rd, err := reduce.Apply(context.Background(), n, d, reduce.Sound)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= 2; k++ {
			expanded := expandResilient(t, rd, k)
			if !expanded.Complete() {
				t.Fatalf("chainLen=%d k=%d: expanded routing incomplete", chainLen, k)
			}
			rep, err := verify.Check(ctx, expanded, k, verify.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Resilient {
				t.Errorf("chainLen=%d k=%d: Theorem 1 violated; failures: %v",
					chainLen, k, rep.Failing)
			}
		}
	}
}

// TestTheorem1RandomChainGraphs stresses Theorem 1 on random chain-rich
// 2-edge-connected graphs.
func TestTheorem1RandomChainGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 8; round++ {
		n, d := randomChainGraph(rng)
		rd, err := reduce.Apply(context.Background(), n, d, reduce.Sound)
		if err != nil {
			t.Fatal(err)
		}
		if rd.NumRemoved() == 0 {
			continue
		}
		expanded := expandResilient(t, rd, 1)
		rep, err := verify.Check(ctx, expanded, 1, verify.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Resilient {
			t.Errorf("round %d: Theorem 1 violated on %s; failures: %v",
				round, n.Name(), rep.Failing)
		}
	}
}

// TestAggressiveExpansionRepairable: the aggressive rule offers no
// guarantee, but the expanded routing must always be repairable back to
// resilience on these 2-edge-connected instances (the paper observed repair
// always succeeded).
func TestAggressiveExpansionRepairable(t *testing.T) {
	n, d := chainRing(5)
	rd, err := reduce.Apply(context.Background(), n, d, reduce.Aggressive)
	if err != nil {
		t.Fatal(err)
	}
	expanded := expandResilient(t, rd, 2)
	rep, err := verify.Check(ctx, expanded, 2, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resilient {
		return // already resilient, nothing to repair
	}
	out, err := repair.Repair(ctx, expanded, 2, repair.Options{})
	if err != nil {
		if errors.Is(err, repair.ErrUnrepairable) {
			t.Fatalf("aggressive expansion unrepairable; failures: %v", rep.Failing)
		}
		t.Fatal(err)
	}
	if !verify.Resilient(out.Routing, 2) {
		t.Fatal("repaired expansion not 2-resilient")
	}
}

// TestExpandValidation: Expand rejects foreign routings, wrong destinations
// and holes.
func TestExpandValidation(t *testing.T) {
	n, d := chainRing(4)
	rd, err := reduce.Apply(context.Background(), n, d, reduce.Sound)
	if err != nil {
		t.Fatal(err)
	}
	// Routing on the original network instead of the reduced one.
	wrong := routing.New(n, d)
	if _, err := rd.Expand(wrong); err == nil {
		t.Error("Expand accepted routing on wrong network")
	}
	// Wrong destination on the reduced network.
	other := routing.New(rd.Reduced, rd.DestReduced+1)
	if _, err := rd.Expand(other); err == nil {
		t.Error("Expand accepted routing with wrong destination")
	}
	// Holes.
	holey, err := heuristic.Generate(context.Background(), rd.Reduced, rd.DestReduced)
	if err != nil {
		t.Fatal(err)
	}
	hk := holey.AllKeys()[0]
	if err := holey.PunchHole(hk.In, hk.At, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Expand(holey); err == nil {
		t.Error("Expand accepted routing with holes")
	}
}

// TestExpandWithFullSynthesisOnReduced: synthesise from scratch on the
// reduced network (the pipeline's ReductionOnly strategy) and expand.
func TestExpandWithFullSynthesisOnReduced(t *testing.T) {
	n, d := chainRing(6)
	rd, err := reduce.Apply(context.Background(), n, d, reduce.Aggressive)
	if err != nil {
		t.Fatal(err)
	}
	empty := routing.New(rd.Reduced, rd.DestReduced)
	for _, key := range empty.AllKeys() {
		if err := empty.PunchHole(key.In, key.At, 3); err != nil {
			t.Fatal(err)
		}
	}
	sol, err := encode.Solve(ctx, empty, 2, encode.Options{})
	if err != nil {
		t.Fatalf("full synthesis on reduced: %v", err)
	}
	expanded, err := rd.Expand(sol.Routing)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if !expanded.Complete() {
		t.Error("expanded routing incomplete")
	}
	if err := expanded.Validate(); err != nil {
		t.Errorf("expanded routing invalid: %v", err)
	}
}

// randomChainGraph builds a random 2-edge-connected graph with chains: a
// ring of hubs, chains spliced between random hubs.
func randomChainGraph(rng *rand.Rand) (*network.Network, network.NodeID) {
	b := network.NewBuilder("randchain")
	hubs := 3 + rng.Intn(3)
	ids := make([]network.NodeID, hubs)
	for i := range ids {
		ids[i] = b.AddNode("h" + string(rune('A'+i)))
	}
	for i := 0; i < hubs; i++ {
		b.AddEdge(ids[i], ids[(i+1)%hubs])
	}
	chains := 1 + rng.Intn(2)
	serial := 0
	for c := 0; c < chains; c++ {
		u := ids[rng.Intn(hubs)]
		v := ids[rng.Intn(hubs)]
		if u == v {
			v = ids[(rng.Intn(hubs)+1)%hubs]
		}
		prev := u
		hop := 3 + rng.Intn(4)
		for i := 0; i < hop; i++ {
			serial++
			cur := b.AddNode("c" + string(rune('a'+serial%26)) + string(rune('a'+(serial/26)%26)))
			b.AddEdge(prev, cur)
			prev = cur
		}
		b.AddEdge(prev, v)
	}
	return b.MustBuild(), 0
}
