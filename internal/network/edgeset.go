package network

import (
	"math/bits"
	"strconv"
	"strings"
)

// EdgeSet is a set of edge ids implemented as a bitset. It is the
// representation of failure scenarios F ⊆ E. Use NewEdgeSet to size the set
// for a given network.
type EdgeSet struct {
	words []uint64
}

// NewEdgeSet returns an empty set able to hold edge ids below capacity.
func NewEdgeSet(capacity int) EdgeSet {
	return EdgeSet{words: make([]uint64, (capacity+63)/64)}
}

// EdgeSetOf returns a set containing exactly the given edges.
func EdgeSetOf(capacity int, edges ...EdgeID) EdgeSet {
	s := NewEdgeSet(capacity)
	for _, e := range edges {
		s.Add(e)
	}
	return s
}

// Add inserts e into the set.
func (s EdgeSet) Add(e EdgeID) { s.words[e>>6] |= 1 << (uint(e) & 63) }

// Remove deletes e from the set.
func (s EdgeSet) Remove(e EdgeID) { s.words[e>>6] &^= 1 << (uint(e) & 63) }

// Has reports whether e is in the set.
func (s EdgeSet) Has(e EdgeID) bool {
	w := int(e >> 6)
	if w < 0 || w >= len(s.words) {
		return false
	}
	return s.words[w]&(1<<(uint(e)&63)) != 0
}

// Len returns the number of edges in the set.
func (s EdgeSet) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no members.
func (s EdgeSet) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s EdgeSet) Clone() EdgeSet {
	return EdgeSet{words: append([]uint64(nil), s.words...)}
}

// SubsetOf reports whether every edge of s is also in t.
func (s EdgeSet) SubsetOf(t EdgeSet) bool {
	for i, w := range s.words {
		var tw uint64
		if i < len(t.words) {
			tw = t.words[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain the same edges.
func (s EdgeSet) Equal(t EdgeSet) bool {
	return s.SubsetOf(t) && t.SubsetOf(s)
}

// Edges returns the members in ascending order.
func (s EdgeSet) Edges() []EdgeID {
	var out []EdgeID
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, EdgeID(wi*64+b))
			w &= w - 1
		}
	}
	return out
}

// String renders the set as "{e1,e4}" using raw ids.
func (s EdgeSet) String() string {
	edges := s.Edges()
	parts := make([]string, len(edges))
	for i, e := range edges {
		parts[i] = "e" + strconv.Itoa(int(e))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Key returns a canonical comparable key for use in maps.
func (s EdgeSet) Key() string {
	edges := s.Edges()
	parts := make([]string, len(edges))
	for i, e := range edges {
		parts[i] = strconv.Itoa(int(e))
	}
	return strings.Join(parts, ",")
}
