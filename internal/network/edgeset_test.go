package network

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEdgeSetBasics(t *testing.T) {
	s := NewEdgeSet(100)
	if !s.Empty() {
		t.Error("new set is not empty")
	}
	s.Add(3)
	s.Add(64)
	s.Add(99)
	if s.Empty() {
		t.Error("set with members reports Empty")
	}
	if got, want := s.Len(), 3; got != want {
		t.Errorf("Len = %d, want %d", got, want)
	}
	for _, e := range []EdgeID{3, 64, 99} {
		if !s.Has(e) {
			t.Errorf("Has(%d) = false", e)
		}
	}
	for _, e := range []EdgeID{0, 63, 65, 98} {
		if s.Has(e) {
			t.Errorf("Has(%d) = true", e)
		}
	}
	s.Remove(64)
	if s.Has(64) {
		t.Error("Has(64) after Remove = true")
	}
	if got, want := s.Len(), 2; got != want {
		t.Errorf("Len after remove = %d, want %d", got, want)
	}
}

func TestEdgeSetHasOutOfRange(t *testing.T) {
	s := NewEdgeSet(10)
	if s.Has(1000) {
		t.Error("Has(out of range) = true")
	}
}

func TestEdgeSetCloneIsIndependent(t *testing.T) {
	s := EdgeSetOf(10, 1, 2)
	c := s.Clone()
	c.Add(5)
	if s.Has(5) {
		t.Error("mutating clone affected original")
	}
	if !c.Has(1) || !c.Has(2) {
		t.Error("clone lost members")
	}
}

func TestEdgeSetSubsetEqual(t *testing.T) {
	a := EdgeSetOf(128, 1, 70)
	b := EdgeSetOf(128, 1, 70, 100)
	if !a.SubsetOf(b) {
		t.Error("a ⊆ b = false")
	}
	if b.SubsetOf(a) {
		t.Error("b ⊆ a = true")
	}
	if a.Equal(b) {
		t.Error("a == b")
	}
	if !a.Equal(a.Clone()) {
		t.Error("a != clone(a)")
	}
	// Sets with different capacities but same members are equal.
	small := EdgeSetOf(10, 1)
	big := EdgeSetOf(200, 1)
	if !small.Equal(big) || !big.Equal(small) {
		t.Error("capacity affects Equal")
	}
}

func TestEdgeSetEdgesOrdered(t *testing.T) {
	s := EdgeSetOf(130, 129, 0, 64, 7)
	got := s.Edges()
	want := []EdgeID{0, 7, 64, 129}
	if len(got) != len(want) {
		t.Fatalf("Edges = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Edges = %v, want %v", got, want)
		}
	}
}

func TestEdgeSetStringsAndKeys(t *testing.T) {
	s := EdgeSetOf(10, 4, 1)
	if got, want := s.String(), "{e1,e4}"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if got, want := s.Key(), "1,4"; got != want {
		t.Errorf("Key = %q, want %q", got, want)
	}
	if got, want := NewEdgeSet(10).String(), "{}"; got != want {
		t.Errorf("empty String = %q, want %q", got, want)
	}
}

// Property: Add/Remove/Has agree with a reference map implementation.
func TestEdgeSetQuickAgainstMap(t *testing.T) {
	const capacity = 150
	f := func(ops []uint16) bool {
		s := NewEdgeSet(capacity)
		ref := make(map[EdgeID]bool)
		for _, op := range ops {
			e := EdgeID(op % capacity)
			if op%2 == 0 {
				s.Add(e)
				ref[e] = true
			} else {
				s.Remove(e)
				delete(ref, e)
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		for e := EdgeID(0); e < capacity; e++ {
			if s.Has(e) != ref[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: subset relation matches the definition on random sets.
func TestEdgeSetQuickSubset(t *testing.T) {
	const capacity = 90
	f := func(aBits, bBits []uint8) bool {
		a, b := NewEdgeSet(capacity), NewEdgeSet(capacity)
		for _, x := range aBits {
			a.Add(EdgeID(x) % capacity)
		}
		for _, x := range bBits {
			b.Add(EdgeID(x) % capacity)
		}
		want := true
		for _, e := range a.Edges() {
			if !b.Has(e) {
				want = false
				break
			}
		}
		return a.SubsetOf(b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}
