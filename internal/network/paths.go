package network

// This file implements the graph queries used across SyRep: reachability
// under failure scenarios (the paper's Γ predicate), shortest-path trees
// toward a destination, scenario enumeration, and edge-connectivity.

// ConnectedWithout reports whether s and t are connected in G∖F, i.e. the
// paper's Γ(s, F, t). Loop-back edges are never usable for moving between
// nodes, so they are ignored regardless of F.
func (n *Network) ConnectedWithout(s, t NodeID, failed EdgeSet) bool {
	if s == t {
		return true
	}
	visited := make([]bool, n.NumNodes())
	queue := []NodeID{s}
	visited[s] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range n.incident[v] {
			if failed.Has(e) {
				continue
			}
			w := n.Other(e, v)
			if visited[w] {
				continue
			}
			if w == t {
				return true
			}
			visited[w] = true
			queue = append(queue, w)
		}
	}
	return false
}

// ReachableWithout returns, for every node, whether it can reach t in G∖F.
func (n *Network) ReachableWithout(t NodeID, failed EdgeSet) []bool {
	visited := make([]bool, n.NumNodes())
	queue := []NodeID{t}
	visited[t] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range n.incident[v] {
			if failed.Has(e) {
				continue
			}
			w := n.Other(e, v)
			if !visited[w] {
				visited[w] = true
				queue = append(queue, w)
			}
		}
	}
	return visited
}

// Connected reports whether the whole network is connected.
func (n *Network) Connected() bool {
	reach := n.ReachableWithout(0, NewEdgeSet(n.NumRealEdges()))
	for _, ok := range reach {
		if !ok {
			return false
		}
	}
	return true
}

// ShortestPathTree computes a BFS tree toward dest. For every node v != dest
// it returns the first edge of a shortest path from v to dest (the "default
// next-hop edge" e_v of Section IV-A) and the hop distance. Ties are broken
// deterministically by preferring smaller edge ids, so that the heuristic
// generator is reproducible. dist[dest] == 0 and parentEdge[dest] == NoEdge.
// Unreachable nodes get dist -1.
func (n *Network) ShortestPathTree(dest NodeID) (parentEdge []EdgeID, dist []int) {
	parentEdge = make([]EdgeID, n.NumNodes())
	dist = make([]int, n.NumNodes())
	for i := range parentEdge {
		parentEdge[i] = NoEdge
		dist[i] = -1
	}
	dist[dest] = 0
	queue := []NodeID{dest}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range n.incident[v] {
			w := n.Other(e, v)
			switch {
			case dist[w] == -1:
				dist[w] = dist[v] + 1
				parentEdge[w] = e
				queue = append(queue, w)
			case dist[w] == dist[v]+1 && e < parentEdge[w]:
				// Deterministic tie-break among equally short paths.
				parentEdge[w] = e
			}
		}
	}
	return parentEdge, dist
}

// DefaultPath returns the node sequence of the default path from v to dest
// (inclusive of both), following the given shortest-path tree. It returns nil
// when v cannot reach dest.
func (n *Network) DefaultPath(v, dest NodeID, parentEdge []EdgeID) []NodeID {
	if parentEdge[v] == NoEdge && v != dest {
		return nil
	}
	path := []NodeID{v}
	for v != dest {
		e := parentEdge[v]
		v = n.Other(e, v)
		path = append(path, v)
		if len(path) > n.NumNodes() {
			return nil // defensive: malformed tree
		}
	}
	return path
}

// ForEachScenario invokes fn for every failure scenario F over the real
// edges with |F| <= k, including the empty scenario, in a deterministic
// depth-first lexicographic order ({} before {e0} before {e0,e1} before
// {e1}, ...). The EdgeSet passed to fn is reused between calls; fn must
// Clone it to retain it. Iteration stops early when fn returns false, in
// which case ForEachScenario returns false.
func (n *Network) ForEachScenario(k int, fn func(F EdgeSet) bool) bool {
	m := n.NumRealEdges()
	if k > m {
		k = m
	}
	set := NewEdgeSet(m)
	if !fn(set) {
		return false
	}
	var rec func(start EdgeID, remaining int) bool
	rec = func(start EdgeID, remaining int) bool {
		if remaining == 0 {
			return true
		}
		for e := start; int(e) < m; e++ {
			set.Add(e)
			if !fn(set) {
				return false
			}
			if !rec(e+1, remaining-1) {
				return false
			}
			set.Remove(e)
		}
		return true
	}
	return rec(0, k)
}

// CountScenarios returns the number of failure scenarios with |F| <= k.
func (n *Network) CountScenarios(k int) int {
	m := n.NumRealEdges()
	if k > m {
		k = m
	}
	total := 0
	binom := 1
	for i := 0; i <= k; i++ {
		total += binom
		binom = binom * (m - i) / (i + 1)
	}
	return total
}

// EdgeConnectivity returns the global edge connectivity λ(G) of the network
// (minimum number of edges whose removal disconnects it), computed with
// repeated unit-capacity max-flow between node 0 and every other node. The
// paper's topologies are small, so the O(V · E · λ) cost is acceptable.
func (n *Network) EdgeConnectivity() int {
	if n.NumNodes() < 2 {
		return 0
	}
	min := -1
	for t := 1; t < n.NumNodes(); t++ {
		f := n.maxFlow(0, NodeID(t))
		if min == -1 || f < min {
			min = f
		}
		if min == 0 {
			return 0
		}
	}
	return min
}

// maxFlow computes the max number of edge-disjoint paths between s and t
// using BFS augmentation on unit capacities (Edmonds–Karp).
func (n *Network) maxFlow(s, t NodeID) int {
	// used[e] is -1 when edge unused, otherwise the node id the flow leaves
	// from (direction marker); undirected unit edges carry at most one unit.
	type dirUse struct {
		used bool
		from NodeID
	}
	use := make([]dirUse, n.NumRealEdges())
	flow := 0
	for {
		// BFS for an augmenting path; traversing an edge forward if unused,
		// or backward (cancelling) if used in the opposite direction.
		prevEdge := make([]EdgeID, n.NumNodes())
		prevNode := make([]NodeID, n.NumNodes())
		for i := range prevEdge {
			prevEdge[i] = NoEdge
			prevNode[i] = NoNode
		}
		prevNode[s] = s
		queue := []NodeID{s}
		found := false
	bfs:
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, e := range n.incident[v] {
				w := n.Other(e, v)
				u := use[e]
				// Residual capacity exists if the edge is unused, or if it is
				// used with flow entering v (we cancel it).
				if u.used && u.from != w {
					continue
				}
				if prevNode[w] != NoNode {
					continue
				}
				prevNode[w] = v
				prevEdge[w] = e
				if w == t {
					found = true
					break bfs
				}
				queue = append(queue, w)
			}
		}
		if !found {
			return flow
		}
		// Walk back and flip edges.
		for v := t; v != s; {
			e := prevEdge[v]
			u := prevNode[v]
			if use[e].used {
				use[e] = dirUse{} // cancelled
			} else {
				use[e] = dirUse{used: true, from: u}
			}
			v = u
		}
		flow++
	}
}
