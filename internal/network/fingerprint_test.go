package network

import (
	"strings"
	"testing"
)

// buildPerm wires the same topology — a triangle a-b-c with a parallel a-b
// edge — with nodes and edges added in the given orders.
func buildPerm(t *testing.T, nodes []string, links [][2]string) *Network {
	t.Helper()
	b := NewBuilder("perm")
	for _, n := range nodes {
		b.AddNode(n)
	}
	for _, l := range links {
		b.AddLink(l[0], l[1])
	}
	n, err := b.Build()
	if err != nil {
		t.Fatalf("building permuted network: %v", err)
	}
	return n
}

func TestFingerprintOrderIndependent(t *testing.T) {
	n1 := buildPerm(t,
		[]string{"a", "b", "c"},
		[][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}, {"a", "b"}})
	n2 := buildPerm(t,
		[]string{"c", "a", "b"},
		[][2]string{{"c", "b"}, {"b", "a"}, {"a", "b"}, {"a", "c"}})
	if n1.Fingerprint() != n2.Fingerprint() {
		t.Errorf("same topology, different fingerprints:\n  %s\n  %s",
			n1.Fingerprint(), n2.Fingerprint())
	}
	if n1.Fingerprint() == "" {
		t.Error("empty fingerprint")
	}
	// Repeated calls are stable (the value is cached).
	if n1.Fingerprint() != n1.Fingerprint() {
		t.Error("fingerprint not stable across calls")
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	base := buildPerm(t, []string{"a", "b", "c"}, [][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}})
	cases := map[string]*Network{
		"extra parallel edge": buildPerm(t, []string{"a", "b", "c"},
			[][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}, {"a", "b"}}),
		"missing edge": buildPerm(t, []string{"a", "b", "c"},
			[][2]string{{"a", "b"}, {"b", "c"}}),
		"renamed node": buildPerm(t, []string{"a", "b", "d"},
			[][2]string{{"a", "b"}, {"b", "d"}, {"d", "a"}}),
		"extra isolated-ish node": buildPerm(t, []string{"a", "b", "c", "x"},
			[][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}, {"x", "a"}}),
	}
	for name, other := range cases {
		if base.Fingerprint() == other.Fingerprint() {
			t.Errorf("%s: fingerprint collision with base", name)
		}
	}
}

func TestEdgeKeysCanonical(t *testing.T) {
	n1 := buildPerm(t, []string{"a", "b", "c"},
		[][2]string{{"a", "b"}, {"b", "c"}, {"a", "b"}})
	n2 := buildPerm(t, []string{"c", "b", "a"},
		[][2]string{{"b", "a"}, {"a", "b"}, {"c", "b"}})
	// Every key of n1 resolves on n2 and round-trips to the same key.
	for _, e := range n1.RealEdges() {
		key := n1.EdgeKey(e)
		if !strings.Contains(key, "|") {
			t.Fatalf("edge key %q lacks endpoint separator", key)
		}
		o, ok := n2.EdgeByKey(key)
		if !ok {
			t.Fatalf("key %q of n1 not found on n2", key)
		}
		if n2.EdgeKey(o) != key {
			t.Fatalf("key round-trip mismatch: %q vs %q", key, n2.EdgeKey(o))
		}
	}
	// Parallel edges get distinct ordinals.
	if n1.EdgeKey(0) == n1.EdgeKey(2) {
		t.Errorf("parallel edges share a key: %q", n1.EdgeKey(0))
	}
	// Loop-backs resolve too.
	lb := n1.Loopback(n1.NodeByName("b"))
	if got, ok := n2.EdgeByKey(n1.EdgeKey(lb)); !ok || !n2.IsLoopback(got) {
		t.Errorf("loop-back key %q did not resolve to a loop-back on n2", n1.EdgeKey(lb))
	}
}

func TestWithoutEdges(t *testing.T) {
	n := buildPerm(t, []string{"a", "b", "c"},
		[][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}})
	m, err := WithoutEdges(n, []EdgeID{1})
	if err != nil {
		t.Fatalf("WithoutEdges: %v", err)
	}
	if m.NumRealEdges() != 2 || m.NumNodes() != 3 {
		t.Fatalf("got %d edges, %d nodes; want 2, 3", m.NumRealEdges(), m.NumNodes())
	}
	want := buildPerm(t, []string{"a", "b", "c"}, [][2]string{{"a", "b"}, {"c", "a"}})
	if m.Fingerprint() != want.Fingerprint() {
		t.Errorf("fingerprint after deletion differs from direct construction")
	}
	if _, err := WithoutEdges(n, []EdgeID{n.Loopback(0)}); err == nil {
		t.Error("deleting a loop-back should fail")
	}
}
