package network

import (
	"testing"
)

// runningExample builds the 5-node network of Figure 1 in the paper:
//
//	e0={v2,d}, e1={v3,d}, e2={v4,d}, e3={v1,v3}, e4={v1,v4},
//	e5={v2,v4}, e6={v3,v4}
//
// Node ids are assigned in the order d, v1, v2, v3, v4.
func runningExample(t testing.TB) *Network {
	t.Helper()
	b := NewBuilder("fig1")
	d := b.AddNode("d")
	v1 := b.AddNode("v1")
	v2 := b.AddNode("v2")
	v3 := b.AddNode("v3")
	v4 := b.AddNode("v4")
	b.AddNamedEdge("e0", v2, d)
	b.AddNamedEdge("e1", v3, d)
	b.AddNamedEdge("e2", v4, d)
	b.AddNamedEdge("e3", v1, v3)
	b.AddNamedEdge("e4", v1, v4)
	b.AddNamedEdge("e5", v2, v4)
	b.AddNamedEdge("e6", v3, v4)
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return n
}

func TestBuilderBasics(t *testing.T) {
	n := runningExample(t)
	if got, want := n.NumNodes(), 5; got != want {
		t.Errorf("NumNodes = %d, want %d", got, want)
	}
	if got, want := n.NumRealEdges(), 7; got != want {
		t.Errorf("NumRealEdges = %d, want %d", got, want)
	}
	if got, want := n.NumEdges(), 12; got != want {
		t.Errorf("NumEdges = %d, want %d", got, want)
	}
	if !n.Connected() {
		t.Error("Connected = false, want true")
	}
}

func TestLoopbacks(t *testing.T) {
	n := runningExample(t)
	for _, v := range n.Nodes() {
		lb := n.Loopback(v)
		if !n.IsLoopback(lb) {
			t.Errorf("IsLoopback(lb_%d) = false", v)
		}
		u, w := n.Endpoints(lb)
		if u != v || w != v {
			t.Errorf("Endpoints(lb_%d) = (%d,%d), want (%d,%d)", v, u, w, v, v)
		}
		owner, ok := n.LoopbackOwner(lb)
		if !ok || owner != v {
			t.Errorf("LoopbackOwner(lb_%d) = (%d,%v)", v, owner, ok)
		}
		if n.Other(lb, v) != v {
			t.Errorf("Other(lb_%d, %d) != %d", v, v, v)
		}
	}
	if _, ok := n.LoopbackOwner(0); ok {
		t.Error("LoopbackOwner(real edge) reported ok")
	}
	if got := n.EdgeName(n.Loopback(0)); got != "lb_d" {
		t.Errorf("EdgeName(lb_d) = %q", got)
	}
}

func TestIncidence(t *testing.T) {
	n := runningExample(t)
	v4 := n.NodeByName("v4")
	inc := n.IncidentEdges(v4)
	want := []EdgeID{2, 4, 5, 6}
	if len(inc) != len(want) {
		t.Fatalf("IncidentEdges(v4) = %v, want %v", inc, want)
	}
	for i := range want {
		if inc[i] != want[i] {
			t.Fatalf("IncidentEdges(v4) = %v, want %v", inc, want)
		}
	}
	if got, want := n.Degree(v4), 4; got != want {
		t.Errorf("Degree(v4) = %d, want %d", got, want)
	}
	if got := n.Other(6, v4); got != n.NodeByName("v3") {
		t.Errorf("Other(e6, v4) = %d, want v3", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	tests := []struct {
		name  string
		build func(b *Builder)
	}{
		{"duplicate node", func(b *Builder) { b.AddNode("x"); b.AddNode("x") }},
		{"self loop", func(b *Builder) { v := b.AddNode("x"); b.AddEdge(v, v) }},
		{"bad endpoint", func(b *Builder) { b.AddNode("x"); b.AddEdge(0, 7) }},
		{"no nodes", func(b *Builder) {}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := NewBuilder("bad")
			tt.build(b)
			if _, err := b.Build(); err == nil {
				t.Error("Build succeeded, want error")
			}
		})
	}
}

func TestNodeLookup(t *testing.T) {
	n := runningExample(t)
	if got := n.NodeByName("v3"); got != 3 {
		t.Errorf("NodeByName(v3) = %d, want 3", got)
	}
	if got := n.NodeByName("nope"); got != NoNode {
		t.Errorf("NodeByName(nope) = %d, want NoNode", got)
	}
	if got := n.NodeName(0); got != "d" {
		t.Errorf("NodeName(0) = %q, want d", got)
	}
}

func TestParallelEdges(t *testing.T) {
	b := NewBuilder("multi")
	u := b.AddNode("u")
	v := b.AddNode("v")
	e1 := b.AddEdge(u, v)
	e2 := b.AddEdge(u, v)
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if e1 == e2 {
		t.Fatal("parallel edges share an id")
	}
	if got, want := n.Degree(u), 2; got != want {
		t.Errorf("Degree(u) = %d, want %d", got, want)
	}
	if n.EdgeConnectivity() != 2 {
		t.Errorf("EdgeConnectivity = %d, want 2", n.EdgeConnectivity())
	}
}

func TestConnectedWithout(t *testing.T) {
	n := runningExample(t)
	d := n.NodeByName("d")
	v3 := n.NodeByName("v3")
	tests := []struct {
		name   string
		failed []EdgeID
		want   bool
	}{
		{"no failures", nil, true},
		{"e1 fails", []EdgeID{1}, true},
		{"e1,e2 fail (Fig 1c)", []EdgeID{1, 2}, true},
		{"e1,e3,e6 fail", []EdgeID{1, 3, 6}, false},
		{"all v3 edges fail", []EdgeID{1, 3, 6}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			F := EdgeSetOf(n.NumRealEdges(), tt.failed...)
			if got := n.ConnectedWithout(v3, d, F); got != tt.want {
				t.Errorf("ConnectedWithout(v3,d,%v) = %v, want %v", F, got, tt.want)
			}
		})
	}
	if !n.ConnectedWithout(d, d, NewEdgeSet(7)) {
		t.Error("node not connected to itself")
	}
}

func TestReachableWithout(t *testing.T) {
	n := runningExample(t)
	d := n.NodeByName("d")
	F := EdgeSetOf(n.NumRealEdges(), 1, 3, 6) // isolate v3
	reach := n.ReachableWithout(d, F)
	for _, v := range n.Nodes() {
		want := n.NodeName(v) != "v3"
		if reach[v] != want {
			t.Errorf("reach[%s] = %v, want %v", n.NodeName(v), reach[v], want)
		}
	}
}

func TestShortestPathTree(t *testing.T) {
	n := runningExample(t)
	d := n.NodeByName("d")
	parent, dist := n.ShortestPathTree(d)
	wantDist := map[string]int{"d": 0, "v1": 2, "v2": 1, "v3": 1, "v4": 1}
	for name, want := range wantDist {
		v := n.NodeByName(name)
		if dist[v] != want {
			t.Errorf("dist[%s] = %d, want %d", name, dist[v], want)
		}
	}
	// Default edges match Figure 3: e_v2=e0, e_v3=e1, e_v4=e2, e_v1=e3
	// (v1 ties between e3 via v3 and e4 via v4; the smaller edge id wins).
	wantParent := map[string]EdgeID{"v1": 3, "v2": 0, "v3": 1, "v4": 2}
	for name, want := range wantParent {
		v := n.NodeByName(name)
		if parent[v] != want {
			t.Errorf("parentEdge[%s] = %d, want %d", name, parent[v], want)
		}
	}
	if parent[d] != NoEdge {
		t.Errorf("parentEdge[d] = %d, want NoEdge", parent[d])
	}
}

func TestDefaultPath(t *testing.T) {
	n := runningExample(t)
	d := n.NodeByName("d")
	parent, _ := n.ShortestPathTree(d)
	v1 := n.NodeByName("v1")
	path := n.DefaultPath(v1, d, parent)
	want := []string{"v1", "v3", "d"}
	if len(path) != len(want) {
		t.Fatalf("DefaultPath(v1) = %v, want %v", path, want)
	}
	for i, name := range want {
		if n.NodeName(path[i]) != name {
			t.Fatalf("DefaultPath(v1)[%d] = %s, want %s", i, n.NodeName(path[i]), name)
		}
	}
	if got := n.DefaultPath(d, d, parent); len(got) != 1 || got[0] != d {
		t.Errorf("DefaultPath(d) = %v, want [d]", got)
	}
}

func TestDefaultPathUnreachable(t *testing.T) {
	b := NewBuilder("disc")
	a := b.AddNode("a")
	b.AddNode("b")
	c := b.AddNode("c")
	b.AddEdge(a, c)
	n := b.MustBuild()
	parent, dist := n.ShortestPathTree(a)
	bn := n.NodeByName("b")
	if dist[bn] != -1 {
		t.Errorf("dist[b] = %d, want -1", dist[bn])
	}
	if got := n.DefaultPath(bn, a, parent); got != nil {
		t.Errorf("DefaultPath(b) = %v, want nil", got)
	}
}

func TestForEachScenario(t *testing.T) {
	n := runningExample(t)
	for k := 0; k <= 3; k++ {
		count := 0
		seen := make(map[string]bool)
		ok := n.ForEachScenario(k, func(F EdgeSet) bool {
			count++
			if F.Len() > k {
				t.Fatalf("scenario %v exceeds k=%d", F, k)
			}
			key := F.Key()
			if seen[key] {
				t.Fatalf("scenario %v enumerated twice", F)
			}
			seen[key] = true
			return true
		})
		if !ok {
			t.Fatalf("k=%d: iteration reported early stop", k)
		}
		if want := n.CountScenarios(k); count != want {
			t.Errorf("k=%d: enumerated %d scenarios, want %d", k, count, want)
		}
	}
}

func TestForEachScenarioEarlyStop(t *testing.T) {
	n := runningExample(t)
	count := 0
	ok := n.ForEachScenario(2, func(F EdgeSet) bool {
		count++
		return count < 5
	})
	if ok {
		t.Error("iteration did not report early stop")
	}
	if count != 5 {
		t.Errorf("fn called %d times, want 5", count)
	}
}

func TestCountScenarios(t *testing.T) {
	n := runningExample(t) // 7 edges
	tests := []struct{ k, want int }{
		{0, 1},
		{1, 8},        // 1 + 7
		{2, 29},       // 1 + 7 + 21
		{3, 64},       // 1 + 7 + 21 + 35
		{100, 1 << 7}, // all subsets
	}
	for _, tt := range tests {
		if got := n.CountScenarios(tt.k); got != tt.want {
			t.Errorf("CountScenarios(%d) = %d, want %d", tt.k, got, tt.want)
		}
	}
}

func TestEdgeConnectivity(t *testing.T) {
	n := runningExample(t)
	if got := n.EdgeConnectivity(); got != 2 {
		t.Errorf("EdgeConnectivity(fig1) = %d, want 2", got)
	}

	// A path graph has connectivity 1.
	b := NewBuilder("path")
	a := b.AddNode("a")
	c := b.AddNode("b")
	e := b.AddNode("c")
	b.AddEdge(a, c)
	b.AddEdge(c, e)
	p := b.MustBuild()
	if got := p.EdgeConnectivity(); got != 1 {
		t.Errorf("EdgeConnectivity(path) = %d, want 1", got)
	}

	// K4 has connectivity 3.
	b2 := NewBuilder("k4")
	var vs []NodeID
	for i := 0; i < 4; i++ {
		vs = append(vs, b2.AddNode(string(rune('a'+i))))
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b2.AddEdge(vs[i], vs[j])
		}
	}
	k4 := b2.MustBuild()
	if got := k4.EdgeConnectivity(); got != 3 {
		t.Errorf("EdgeConnectivity(K4) = %d, want 3", got)
	}

	// Disconnected graph has connectivity 0.
	b3 := NewBuilder("disc")
	b3.AddNode("a")
	b3.AddNode("b")
	disc := b3.MustBuild()
	if got := disc.EdgeConnectivity(); got != 0 {
		t.Errorf("EdgeConnectivity(disconnected) = %d, want 0", got)
	}
}

func TestString(t *testing.T) {
	n := runningExample(t)
	if got := n.String(); got == "" {
		t.Error("String() is empty")
	}
}
