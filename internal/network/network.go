// Package network models communication networks as undirected multigraphs
// with implicit loop-back edges, following Definition 1 of the SyRep paper
// (Györgyi et al., DSN 2024).
//
// A Network is immutable once built. Nodes and edges are identified by dense
// integer ids so that other packages can index slices by them. Every node v
// has exactly one loop-back edge lb_v that models packets arriving at (or
// originating in) v; loop-backs are created automatically by the Builder and
// are never part of failure scenarios.
package network

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// NodeID identifies a node (router) in a Network.
type NodeID int32

// EdgeID identifies an edge (link) in a Network. Loop-back edges have ids in
// the range [NumRealEdges, NumEdges).
type EdgeID int32

// None is the sentinel for "no node" / "no edge".
const (
	NoNode NodeID = -1
	NoEdge EdgeID = -1
)

// String renders the raw node id as "n3".
func (v NodeID) String() string { return fmt.Sprintf("n%d", int32(v)) }

// String renders the raw edge id as "e5".
func (e EdgeID) String() string { return fmt.Sprintf("e%d", int32(e)) }

type edge struct {
	u, v NodeID // u == v for loop-backs
	name string
}

// Network is an undirected multigraph G = (V, E, r) with loop-back edges.
// The zero value is not usable; construct networks with a Builder.
type Network struct {
	name      string
	nodeNames []string
	edges     []edge     // real edges first, then one loop-back per node
	realEdges int        // number of non-loop-back edges
	incident  [][]EdgeID // per node: incident real edges (both endpoints), sorted

	// Lazily computed canonical identities (see fingerprint.go). Guarded by
	// the sync.Onces so concurrent readers of an immutable Network are safe.
	fpOnce    sync.Once
	fp        Fingerprint
	edgeOnce  sync.Once
	edgeKeys  []string
	byEdgeKey map[string]EdgeID
}

// Name returns the (possibly empty) name of the network.
func (n *Network) Name() string { return n.name }

// NumNodes returns |V|.
func (n *Network) NumNodes() int { return len(n.nodeNames) }

// NumRealEdges returns the number of non-loop-back edges.
func (n *Network) NumRealEdges() int { return n.realEdges }

// NumEdges returns the number of all edges including loop-backs.
func (n *Network) NumEdges() int { return len(n.edges) }

// NodeName returns the display name of node v.
func (n *Network) NodeName(v NodeID) string { return n.nodeNames[v] }

// NodeByName returns the node with the given name, or NoNode.
func (n *Network) NodeByName(name string) NodeID {
	for i, s := range n.nodeNames {
		if s == name {
			return NodeID(i)
		}
	}
	return NoNode
}

// EdgeName returns the display name of edge e (loop-backs are named "lb_v").
func (n *Network) EdgeName(e EdgeID) string { return n.edges[e].name }

// Endpoints returns the two endpoints of e; they are equal for loop-backs.
func (n *Network) Endpoints(e EdgeID) (NodeID, NodeID) {
	ed := n.edges[e]
	return ed.u, ed.v
}

// IsLoopback reports whether e is a loop-back edge.
func (n *Network) IsLoopback(e EdgeID) bool { return int(e) >= n.realEdges }

// Loopback returns the loop-back edge lb_v of node v.
func (n *Network) Loopback(v NodeID) EdgeID { return EdgeID(n.realEdges + int(v)) }

// LoopbackOwner returns the node v such that e == lb_v. It reports ok=false
// when e is not a loop-back.
func (n *Network) LoopbackOwner(e EdgeID) (NodeID, bool) {
	if !n.IsLoopback(e) {
		return NoNode, false
	}
	return NodeID(int(e) - n.realEdges), true
}

// Incident reports whether node v is an endpoint of edge e (loop-backs
// included).
func (n *Network) Incident(e EdgeID, v NodeID) bool {
	ed := n.edges[e]
	return ed.u == v || ed.v == v
}

// Other returns the endpoint of e opposite to v. For loop-backs it returns v
// itself. It panics if v is not an endpoint of e; callers are expected to
// validate ids at the boundary.
func (n *Network) Other(e EdgeID, v NodeID) NodeID {
	ed := n.edges[e]
	switch v {
	case ed.u:
		return ed.v
	case ed.v:
		return ed.u
	}
	panic(fmt.Sprintf("network: node %d is not an endpoint of edge %d", v, e))
}

// IncidentEdges returns the real (non-loop-back) edges incident to v, in
// ascending edge-id order. The returned slice is shared; callers must not
// modify it.
func (n *Network) IncidentEdges(v NodeID) []EdgeID { return n.incident[v] }

// Degree returns the number of real edges incident to v (parallel edges
// counted individually).
func (n *Network) Degree(v NodeID) int { return len(n.incident[v]) }

// Nodes returns all node ids in ascending order.
func (n *Network) Nodes() []NodeID {
	out := make([]NodeID, n.NumNodes())
	for i := range out {
		out[i] = NodeID(i)
	}
	return out
}

// RealEdges returns all non-loop-back edge ids in ascending order.
func (n *Network) RealEdges() []EdgeID {
	out := make([]EdgeID, n.realEdges)
	for i := range out {
		out[i] = EdgeID(i)
	}
	return out
}

// String renders a short human-readable summary.
func (n *Network) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "network %q: %d nodes, %d edges", n.name, n.NumNodes(), n.NumRealEdges())
	return b.String()
}

// Builder incrementally constructs a Network.
type Builder struct {
	name      string
	nodeNames []string
	byName    map[string]NodeID
	edges     []edge
	err       error
}

// NewBuilder returns a Builder for a network with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, byName: make(map[string]NodeID)}
}

// AddNode adds a node with the given name and returns its id. Adding a
// duplicate name records an error surfaced by Build.
func (b *Builder) AddNode(name string) NodeID {
	if _, dup := b.byName[name]; dup {
		b.fail(fmt.Errorf("duplicate node name %q", name))
		return NoNode
	}
	id := NodeID(len(b.nodeNames))
	b.nodeNames = append(b.nodeNames, name)
	b.byName[name] = id
	return id
}

// Node returns the id for name, adding the node if it does not exist yet.
func (b *Builder) Node(name string) NodeID {
	if id, ok := b.byName[name]; ok {
		return id
	}
	return b.AddNode(name)
}

// AddEdge adds an undirected edge between u and v and returns its id.
// Parallel edges are allowed (the model is a multigraph); self-loops are not,
// because loop-backs are implicit.
func (b *Builder) AddEdge(u, v NodeID) EdgeID {
	return b.AddNamedEdge(fmt.Sprintf("e%d", len(b.edges)), u, v)
}

// AddNamedEdge adds an undirected edge with an explicit display name.
func (b *Builder) AddNamedEdge(name string, u, v NodeID) EdgeID {
	if u == v {
		b.fail(fmt.Errorf("edge %q: self-loop on node %d (loop-backs are implicit)", name, u))
		return NoEdge
	}
	if !b.validNode(u) || !b.validNode(v) {
		b.fail(fmt.Errorf("edge %q: endpoint out of range (%d, %d)", name, u, v))
		return NoEdge
	}
	id := EdgeID(len(b.edges))
	b.edges = append(b.edges, edge{u: u, v: v, name: name})
	return id
}

// AddLink adds an edge between the nodes with the given names, creating the
// nodes as needed.
func (b *Builder) AddLink(uName, vName string) EdgeID {
	return b.AddEdge(b.Node(uName), b.Node(vName))
}

func (b *Builder) validNode(v NodeID) bool {
	return v >= 0 && int(v) < len(b.nodeNames)
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Build finalises the network, appending the implicit loop-back edges.
func (b *Builder) Build() (*Network, error) {
	if b.err != nil {
		return nil, fmt.Errorf("network %q: %w", b.name, b.err)
	}
	if len(b.nodeNames) == 0 {
		return nil, fmt.Errorf("network %q: no nodes", b.name)
	}
	n := &Network{
		name:      b.name,
		nodeNames: append([]string(nil), b.nodeNames...),
		edges:     make([]edge, 0, len(b.edges)+len(b.nodeNames)),
		realEdges: len(b.edges),
		incident:  make([][]EdgeID, len(b.nodeNames)),
	}
	n.edges = append(n.edges, b.edges...)
	for v, name := range b.nodeNames {
		n.edges = append(n.edges, edge{u: NodeID(v), v: NodeID(v), name: "lb_" + name})
	}
	for id, e := range b.edges {
		n.incident[e.u] = append(n.incident[e.u], EdgeID(id))
		n.incident[e.v] = append(n.incident[e.v], EdgeID(id))
	}
	for _, inc := range n.incident {
		sort.Slice(inc, func(i, j int) bool { return inc[i] < inc[j] })
	}
	return n, nil
}

// MustBuild is Build for tests and embedded topologies that are known valid;
// it panics on error.
func (b *Builder) MustBuild() *Network {
	n, err := b.Build()
	if err != nil {
		panic(err)
	}
	return n
}
