package network

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Fingerprint is a canonical content hash: equal fingerprints mean
// structurally identical content regardless of construction order. The hex
// form is stable across processes and safe to use as a map key or in URLs.
type Fingerprint string

// String returns the hex digest.
func (f Fingerprint) String() string { return string(f) }

// EdgeKey returns the canonical identity of edge e, stable across
// independently built networks: for a real edge, the two endpoint names in
// lexicographic order joined with '|' plus an ordinal '#i' distinguishing
// parallel edges (the i-th parallel edge between the same endpoints, in
// edge-id order); for a loop-back, "lb|<node>". Parallel edges are
// topologically interchangeable, so matching the i-th to the i-th is sound.
// Display names of edges deliberately do not contribute: they depend on
// insertion order.
func (n *Network) EdgeKey(e EdgeID) string {
	n.buildEdgeKeys()
	return n.edgeKeys[e]
}

// EdgeByKey resolves a canonical edge key — as returned by EdgeKey, possibly
// of a different network — to this network's edge id.
func (n *Network) EdgeByKey(key string) (EdgeID, bool) {
	n.buildEdgeKeys()
	e, ok := n.byEdgeKey[key]
	return e, ok
}

// EdgeKeys returns the canonical keys of all real edges, indexed by edge id.
// The slice is shared; callers must not modify it.
func (n *Network) EdgeKeys() []string {
	n.buildEdgeKeys()
	return n.edgeKeys[:n.realEdges]
}

func (n *Network) buildEdgeKeys() {
	n.edgeOnce.Do(func() {
		keys := make([]string, len(n.edges))
		ordinal := make(map[string]int, n.realEdges)
		for i := 0; i < n.realEdges; i++ {
			ed := n.edges[i]
			a, b := n.nodeNames[ed.u], n.nodeNames[ed.v]
			if b < a {
				a, b = b, a
			}
			base := strconv.Quote(a) + "|" + strconv.Quote(b)
			keys[i] = base + "#" + strconv.Itoa(ordinal[base])
			ordinal[base]++
		}
		for i := n.realEdges; i < len(n.edges); i++ {
			keys[i] = "lb|" + strconv.Quote(n.nodeNames[n.edges[i].u])
		}
		byKey := make(map[string]EdgeID, len(keys))
		for i, k := range keys {
			byKey[k] = EdgeID(i)
		}
		n.edgeKeys, n.byEdgeKey = keys, byKey
	})
}

// Fingerprint returns the canonical content hash of the network: SHA-256
// over the sorted node names and the sorted canonical edge keys, independent
// of node and edge insertion order. The network name and edge display names
// do not contribute, so two builders wiring the same links between the same
// node names in any order produce the same fingerprint.
func (n *Network) Fingerprint() Fingerprint {
	n.fpOnce.Do(func() {
		h := sha256.New()
		// Hash writes never fail; errors are ignored throughout.
		_, _ = io.WriteString(h, "syrep/network/v1\n")
		names := append([]string(nil), n.nodeNames...)
		sort.Strings(names)
		for _, s := range names {
			_, _ = io.WriteString(h, "node "+strconv.Quote(s)+"\n")
		}
		keys := append([]string(nil), n.EdgeKeys()...)
		sort.Strings(keys)
		for _, k := range keys {
			_, _ = io.WriteString(h, "edge "+k+"\n")
		}
		n.fp = Fingerprint(hex.EncodeToString(h.Sum(nil)[:16]))
	})
	return n.fp
}

// WithoutEdges returns a copy of n with the given real edges removed,
// preserving node names, edge display names, and the relative order of the
// surviving edges. It is the topology-change primitive used by the
// warm-start benchmark and tests to model link failures.
func WithoutEdges(n *Network, drop []EdgeID) (*Network, error) {
	dropSet := make(map[EdgeID]bool, len(drop))
	for _, e := range drop {
		if e < 0 || int(e) >= n.realEdges {
			return nil, fmt.Errorf("network: edge %v is not a real edge", e)
		}
		dropSet[e] = true
	}
	b := NewBuilder(n.name)
	for _, name := range n.nodeNames {
		b.AddNode(name)
	}
	for i := 0; i < n.realEdges; i++ {
		if dropSet[EdgeID(i)] {
			continue
		}
		ed := n.edges[i]
		b.AddNamedEdge(ed.name, ed.u, ed.v)
	}
	return b.Build()
}
