// Package combinatorial implements the memory-hungry alternative to
// skipping routings that Section II of the SyRep paper contrasts against:
// combinatorial routing stores one forwarding entry per (in-edge, node,
// set-of-failed-incident-links) combination (the Plinko approach [34]).
// Such tables are maximally expressive — any local failover behaviour can be
// written down — but need exponentially many entries in the node degree,
// which is precisely why SyRep (and the literature it follows) synthesises
// skipping tables instead.
//
// The package exists to make that trade-off measurable: FromSkipping
// compiles a skipping routing into the equivalent combinatorial table, and
// the package-level benchmarks compare entry counts.
package combinatorial

import (
	"fmt"
	"math/bits"

	"syrep/internal/network"
	"syrep/internal/routing"
	"syrep/internal/trace"
)

// key identifies one conditional forwarding entry: the packet's in-edge, the
// node, and the subset of the node's incident links that have failed,
// encoded as a bitmask over the node's incident-edge list.
type key struct {
	in         network.EdgeID
	at         network.NodeID
	failedMask uint32
}

// Table is a combinatorial forwarding table toward a fixed destination.
type Table struct {
	net     *network.Network
	dest    network.NodeID
	entries map[key]network.EdgeID
}

// maxDegree bounds the supported node degree (entries per node grow as
// 2^degree, so beyond this the table is pointless anyway).
const maxDegree = 30

// FromSkipping expands a hole-free skipping routing into the equivalent
// combinatorial table: for every entry R(e, v) = (e1, ..., el) and every
// subset S of v's incident links, the table forwards to the first e_i not in
// S (no entry when every e_i is in S — the packet is dropped).
func FromSkipping(r *routing.Routing) (*Table, error) {
	if r.NumHoles() > 0 {
		return nil, fmt.Errorf("combinatorial: routing has %d holes", r.NumHoles())
	}
	net := r.Network()
	t := &Table{
		net:     net,
		dest:    r.Dest(),
		entries: make(map[key]network.EdgeID),
	}
	for _, k := range r.Keys() {
		prio, _ := r.Get(k.In, k.At)
		inc := net.IncidentEdges(k.At)
		if len(inc) > maxDegree {
			return nil, fmt.Errorf("combinatorial: node %s degree %d exceeds %d",
				net.NodeName(k.At), len(inc), maxDegree)
		}
		idx := make(map[network.EdgeID]int, len(inc))
		for i, e := range inc {
			idx[e] = i
		}
		for mask := uint32(0); mask < 1<<len(inc); mask++ {
			// A packet cannot arrive on a failed link.
			if !net.IsLoopback(k.In) && mask&(1<<idx[k.In]) != 0 {
				continue
			}
			for _, e := range prio {
				if mask&(1<<idx[e]) == 0 {
					t.entries[key{in: k.In, at: k.At, failedMask: mask}] = e
					break
				}
			}
		}
	}
	return t, nil
}

// NumEntries returns the number of stored conditional entries — the memory
// footprint the paper's Section II calls "expensive and often infeasible".
func (t *Table) NumEntries() int { return len(t.entries) }

// Step resolves one forwarding decision under a failure scenario.
func (t *Table) Step(failed network.EdgeSet, in network.EdgeID, at network.NodeID) (network.EdgeID, bool) {
	inc := t.net.IncidentEdges(at)
	var mask uint32
	for i, e := range inc {
		if failed.Has(e) {
			mask |= 1 << i
		}
	}
	out, ok := t.entries[key{in: in, at: at, failedMask: mask}]
	return out, ok
}

// Run follows a packet from source under the scenario, with the same
// semantics and loop detection as trace.Run.
func (t *Table) Run(failed network.EdgeSet, source network.NodeID) trace.Result {
	res := trace.Result{}
	in := t.net.Loopback(source)
	at := source
	res.Edges = append(res.Edges, in)
	if at == t.dest {
		res.Outcome = trace.Delivered
		return res
	}
	seen := make(map[key]bool)
	for {
		inc := t.net.IncidentEdges(at)
		var mask uint32
		for i, e := range inc {
			if failed.Has(e) {
				mask |= 1 << i
			}
		}
		k := key{in: in, at: at, failedMask: mask}
		if seen[k] {
			res.Outcome = trace.Looped
			return res
		}
		seen[k] = true
		out, ok := t.entries[k]
		if !ok {
			res.Outcome = trace.Dropped
			return res
		}
		res.Used = append(res.Used, routing.Key{In: in, At: at})
		res.Edges = append(res.Edges, out)
		at = t.net.Other(out, at)
		in = out
		if at == t.dest {
			res.Outcome = trace.Delivered
			return res
		}
	}
}

// Resilient verifies perfect k-resilience of the combinatorial table by
// brute force, mirroring verify.Check for skipping routings.
func (t *Table) Resilient(k int) bool {
	net := t.net
	ok := true
	net.ForEachScenario(k, func(F network.EdgeSet) bool {
		reach := net.ReachableWithout(t.dest, F)
		for _, s := range net.Nodes() {
			if s == t.dest || !reach[s] {
				continue
			}
			if t.Run(F, s).Outcome != trace.Delivered {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

// TheoreticalEntries returns how many conditional entries a full
// combinatorial table needs for the network (every in-edge × node ×
// incident-failure subset that the in-edge survives), versus the linear
// count of a skipping table. It quantifies the paper's Section II argument.
func TheoreticalEntries(net *network.Network, dest network.NodeID) (combinatorial, skipping int) {
	for _, v := range net.Nodes() {
		if v == dest {
			continue
		}
		deg := net.Degree(v)
		subsets := 1 << deg
		// Real in-edges cannot themselves be failed: half the subsets each.
		combinatorial += deg * subsets / 2
		// The loop-back in-edge sees every subset.
		combinatorial += subsets
		// Skipping: one priority list (of at most deg entries) per in-edge.
		skipping += deg + 1
	}
	return combinatorial, skipping
}

// MaskString renders a failure mask for diagnostics.
func (t *Table) MaskString(at network.NodeID, mask uint32) string {
	inc := t.net.IncidentEdges(at)
	out := "{"
	first := true
	for i := 0; i < bits.Len32(mask); i++ {
		if mask&(1<<i) != 0 {
			if !first {
				out += ","
			}
			first = false
			out += t.net.EdgeName(inc[i])
		}
	}
	return out + "}"
}
