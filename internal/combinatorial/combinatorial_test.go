package combinatorial_test

import (
	"strings"
	"testing"

	"syrep/internal/combinatorial"
	"syrep/internal/network"
	"syrep/internal/papernet"
	"syrep/internal/routing"
	"syrep/internal/trace"
	"syrep/internal/verify"
)

func fig1Table(t *testing.T) (*network.Network, *routing.Routing, *combinatorial.Table) {
	t.Helper()
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	tab, err := combinatorial.FromSkipping(r)
	if err != nil {
		t.Fatalf("FromSkipping: %v", err)
	}
	return n, r, tab
}

// TestSemanticsMatchSkipping: the compiled combinatorial table produces
// exactly the same traces as the skipping routing under every scenario with
// up to 2 failures.
func TestSemanticsMatchSkipping(t *testing.T) {
	n, r, tab := fig1Table(t)
	n.ForEachScenario(2, func(F network.EdgeSet) bool {
		for _, s := range n.Nodes() {
			if s == r.Dest() {
				continue
			}
			want := trace.Run(r, F, s)
			got := tab.Run(F, s)
			if got.Outcome != want.Outcome {
				t.Fatalf("src %s F=%v: outcome %v vs skipping %v",
					n.NodeName(s), F, got.Outcome, want.Outcome)
			}
			if len(got.Edges) != len(want.Edges) {
				t.Fatalf("src %s F=%v: trace length %d vs %d",
					n.NodeName(s), F, len(got.Edges), len(want.Edges))
			}
			for i := range want.Edges {
				if got.Edges[i] != want.Edges[i] {
					t.Fatalf("src %s F=%v: trace diverges at %d", n.NodeName(s), F, i)
				}
			}
		}
		return true
	})
}

// TestResilienceMatchesVerifier: the combinatorial verdict equals the
// skipping verifier's at every k.
func TestResilienceMatchesVerifier(t *testing.T) {
	_, r, tab := fig1Table(t)
	for k := 0; k <= 2; k++ {
		if got, want := tab.Resilient(k), verify.Resilient(r, k); got != want {
			t.Errorf("k=%d: combinatorial %v vs skipping %v", k, got, want)
		}
	}
}

func TestEntryCountsAreExponential(t *testing.T) {
	n, r, tab := fig1Table(t)
	if tab.NumEntries() <= r.NumEntries() {
		t.Errorf("combinatorial entries %d not larger than skipping %d",
			tab.NumEntries(), r.NumEntries())
	}
	combo, skip := combinatorial.TheoreticalEntries(n, r.Dest())
	if combo <= skip {
		t.Errorf("theoretical: combinatorial %d <= skipping %d", combo, skip)
	}
	// v4 has degree 4: its loop-back alone accounts for 16 subsets.
	if combo < 16 {
		t.Errorf("theoretical combinatorial %d implausibly small", combo)
	}
	t.Logf("Fig1 entries: skipping=%d combinatorial=%d (theoretical %d vs %d)",
		r.NumEntries(), tab.NumEntries(), skip, combo)
}

func TestStep(t *testing.T) {
	n, _, tab := fig1Table(t)
	v3 := n.NodeByName("v3")
	none := network.NewEdgeSet(n.NumRealEdges())
	out, ok := tab.Step(none, n.Loopback(v3), v3)
	if !ok || out != 1 {
		t.Errorf("Step(lb_v3) = (%v,%v), want e1", out, ok)
	}
	F := network.EdgeSetOf(n.NumRealEdges(), 1)
	out, ok = tab.Step(F, n.Loopback(v3), v3)
	if !ok || out != 6 {
		t.Errorf("Step(lb_v3 | e1 failed) = (%v,%v), want e6", out, ok)
	}
	all := network.EdgeSetOf(n.NumRealEdges(), 1, 3, 6)
	if _, ok := tab.Step(all, n.Loopback(v3), v3); ok {
		t.Error("Step with all priorities failed returned an entry")
	}
}

func TestFromSkippingRejectsHoles(t *testing.T) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	v3 := n.NodeByName("v3")
	if err := r.PunchHole(1, v3, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := combinatorial.FromSkipping(r); err == nil {
		t.Error("FromSkipping accepted a routing with holes")
	}
}

func TestNoEntryForArrivingOnFailedLink(t *testing.T) {
	// Packets cannot arrive on a failed link, so those entries are omitted;
	// compare against the naive full product to confirm the saving.
	n, _, tab := fig1Table(t)
	full := 0
	for _, v := range n.Nodes() {
		if v == n.NodeByName("d") {
			continue
		}
		deg := n.Degree(v)
		full += (deg + 1) * (1 << deg)
	}
	if tab.NumEntries() >= full {
		t.Errorf("entries %d not smaller than naive product %d", tab.NumEntries(), full)
	}
}

func TestMaskString(t *testing.T) {
	n, _, tab := fig1Table(t)
	v4 := n.NodeByName("v4")
	// v4's incident edges are e2, e4, e5, e6: mask 0b0101 = {e2, e5}.
	s := tab.MaskString(v4, 0b0101)
	if !strings.Contains(s, "e2") || !strings.Contains(s, "e5") {
		t.Errorf("MaskString = %q", s)
	}
	if got := tab.MaskString(v4, 0); got != "{}" {
		t.Errorf("MaskString(0) = %q", got)
	}
}

// TestDroppedSemantics: when every listed priority is failed, the
// combinatorial table has no entry and the packet drops, same as skipping.
func TestDroppedSemantics(t *testing.T) {
	n, r, tab := fig1Table(t)
	v1 := n.NodeByName("v1")
	F := network.EdgeSetOf(n.NumRealEdges(), 3, 4)
	want := trace.Run(r, F, v1)
	got := tab.Run(F, v1)
	if want.Outcome != trace.Dropped || got.Outcome != trace.Dropped {
		t.Errorf("outcomes: skipping %v combinatorial %v, want dropped", want.Outcome, got.Outcome)
	}
}
