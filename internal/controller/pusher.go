package controller

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"syrep/internal/obs"
	"syrep/internal/resilience"
	"syrep/internal/retry"
)

// DeadLetterError is the typed, terminal outcome of a delta the pusher gave
// up on: retries exhausted, a permanent sink error, or a skip while the
// destination awaits resync. The controller settles the affected events
// with it and schedules a snapshot resync for the destination.
type DeadLetterError struct {
	// Dest and Epoch identify the failed delta.
	Dest  string
	Epoch uint64
	// Attempts counts push attempts made (0 for resync skips).
	Attempts int
	// Err is the final push error.
	Err error
}

func (e *DeadLetterError) Error() string {
	return fmt.Sprintf("controller: delta for %s@%d dead-lettered after %d attempts: %v",
		e.Dest, e.Epoch, e.Attempts, e.Err)
}

func (e *DeadLetterError) Unwrap() error { return e.Err }

// ErrResyncPending skips a delta queued behind a dead-lettered one: the
// receiver missed state, so patching on top would corrupt its table. The
// destination's next push is a full snapshot instead.
var ErrResyncPending = errors.New("controller: destination awaiting snapshot resync")

// errDuplicatePush skips a patch delta at or below the destination's ack
// watermark: the sink acknowledged that epoch already (recorded in the
// journal before a crash), so re-pushing would be a duplicate. The skip
// settles as delivered. Snapshots are exempt — they are idempotent
// wholesale replaces and legitimately repeat at the same epoch.
var errDuplicatePush = errors.New("controller: delta already acknowledged, skipped")

// DeadLetter is one entry of the pusher's bounded dead-letter queue, kept
// for operator inspection after the failed delta was settled.
type DeadLetter struct {
	Delta    Delta
	Err      error
	Attempts int
}

// pushJob is one queued southbound push.
type pushJob struct {
	delta Delta
}

// pusher is the single-goroutine southbound push pipeline: FIFO over a
// bounded queue, per-attempt timeouts, full-jitter retry on transient
// failures, and dead-lettering with per-destination resync poisoning.
// FIFO matters twice over: deltas apply in epoch order, and settlement
// accounting resolves epochs in order.
type pusher struct {
	sink     Sink
	queue    chan pushJob
	backoff  *retry.Backoff
	timeout  time.Duration
	attempts int
	hook     resilience.Hook
	obs      *obs.Observer
	// onResult reports each job's terminal fate (nil = delivered) on the
	// pusher goroutine; the controller settles events from it.
	onResult func(pushJob, error)

	mu       sync.Mutex
	poisoned map[string]bool
	dlq      []DeadLetter
	dlqCap   int
	// watermark is the highest sink-acknowledged epoch per destination,
	// seeded by Recover and advanced on every delivery; patch deltas at or
	// below it are duplicates and never contact the sink.
	watermark map[string]uint64
}

// enqueue submits one job to the push queue. The single send site keeps the
// queue's one-send-per-call discipline obvious; callers loop over jobs.
func (p *pusher) enqueue(j pushJob) { p.queue <- j }

func newPusher(sink Sink, queueCap int, onResult func(pushJob, error)) *pusher {
	return &pusher{
		sink:      sink,
		queue:     make(chan pushJob, queueCap),
		onResult:  onResult,
		poisoned:  make(map[string]bool),
		dlqCap:    128,
		watermark: make(map[string]uint64),
	}
}

// seedRecovery restores the pusher's crash-surviving state: poisoned
// destinations resync by snapshot, watermarks dedup already-acked epochs,
// and the dead-letter queue returns for operator inspection.
func (p *pusher) seedRecovery(poisoned []string, watermarks map[string]uint64, dlq []DeadLetter) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, dest := range poisoned {
		p.poisoned[dest] = true
	}
	for dest, epoch := range watermarks {
		p.watermark[dest] = epoch
	}
	p.dlq = append(p.dlq, dlq...)
	if len(p.dlq) > p.dlqCap {
		p.dlq = p.dlq[len(p.dlq)-p.dlqCap:]
	}
}

// poisonedDests lists destinations awaiting snapshot resync, sorted.
func (p *pusher) poisonedDests() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.poisoned))
	for dest := range p.poisoned {
		out = append(out, dest)
	}
	sort.Strings(out)
	return out
}

// run drains the queue until it is closed. When the drain context is force-
// cancelled (shutdown grace expired), the remaining queue is dead-lettered
// without sink contact so every job still reaches onResult.
func (p *pusher) run(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			// The controller closes the queue before cancelling this
			// context, so the flush terminates.
			for j := range p.queue {
				p.fail(j, context.Cause(ctx), 0)
			}
			return
		case j, ok := <-p.queue:
			if !ok {
				return
			}
			p.process(ctx, j)
		}
	}
}

func (p *pusher) process(ctx context.Context, j pushJob) {
	d := j.delta
	if !d.Snapshot && d.Epoch <= p.ackedEpoch(d.Dest) {
		p.obs.Counter(obs.CtlDupSkips).Inc()
		p.onResult(j, errDuplicatePush)
		return
	}
	if p.awaitingResync(d.Dest) && !d.Snapshot {
		p.fail(j, ErrResyncPending, 0)
		return
	}
	var err error
	attempt := 0
	for ; attempt < p.attempts; attempt++ {
		err = p.attemptPush(ctx, d)
		if err == nil {
			break
		}
		if !retryablePush(err) || ctx.Err() != nil || attempt+1 == p.attempts {
			break
		}
		p.obs.Counter(obs.CtlPushRetries).Inc()
		if serr := retry.Sleep(ctx, p.backoff.Delay(attempt)); serr != nil {
			err = serr
			break
		}
	}
	if err != nil {
		p.fail(j, err, attempt+1)
		return
	}
	p.obs.Counter(obs.CtlPushes).Inc()
	p.clearPoison(d)
	p.advanceWatermark(d)
	p.onResult(j, nil)
}

// ackedEpoch reads the destination's ack watermark (0 when never acked).
func (p *pusher) ackedEpoch(dest string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.watermark[dest]
}

// advanceWatermark records a delivery so later duplicates are skipped.
func (p *pusher) advanceWatermark(d Delta) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if d.Epoch > p.watermark[d.Dest] {
		p.watermark[d.Dest] = d.Epoch
	}
}

// attemptPush is one sink contact under the per-push timeout, with the
// StageCtlPush fault point consulted first.
func (p *pusher) attemptPush(ctx context.Context, d Delta) error {
	if p.hook != nil {
		if err := p.hook.At(resilience.StageCtlPush); err != nil {
			return err
		}
	}
	actx, cancel := context.WithTimeout(ctx, p.timeout)
	defer cancel()
	return p.sink.Push(actx, d)
}

// fail dead-letters a job: records it, poisons the destination so later
// patch deltas skip until a snapshot lands, and settles the job with a
// typed DeadLetterError.
func (p *pusher) fail(j pushJob, err error, attempts int) {
	d := j.delta
	p.record(d, err, attempts)
	p.obs.Counter(obs.CtlDeadLetters).Inc()
	p.onResult(j, &DeadLetterError{Dest: d.Dest, Epoch: d.Epoch, Attempts: attempts, Err: err})
}

func (p *pusher) record(d Delta, err error, attempts int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.poisoned[d.Dest] = true
	if len(p.dlq) >= p.dlqCap {
		p.dlq = p.dlq[1:]
	}
	p.dlq = append(p.dlq, DeadLetter{Delta: d, Err: err, Attempts: attempts})
}

func (p *pusher) awaitingResync(dest string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.poisoned[dest]
}

// clearPoison completes the resync-on-reconnect path: a delivered snapshot
// re-baselines the receiver, so patch deltas may flow again.
func (p *pusher) clearPoison(d Delta) {
	if !d.Snapshot {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.poisoned[d.Dest] {
		delete(p.poisoned, d.Dest)
		p.obs.Counter(obs.CtlResyncs).Inc()
	}
}

// deadLetters returns the retained dead-letter queue, oldest first.
func (p *pusher) deadLetters() []DeadLetter {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]DeadLetter(nil), p.dlq...)
}
