package controller

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"syrep/internal/network"
	"syrep/internal/obs"
)

// RecoveryInfo summarizes what Recover reconstructed from the journal.
type RecoveryInfo struct {
	// Epoch is the recovered topology epoch.
	Epoch uint64
	// Down lists the recovered down links, sorted.
	Down []string
	// Records counts replayed tail records; SnapshotLoaded tells whether a
	// state snapshot seeded the replay.
	Records        int
	SnapshotLoaded bool
	// TornTail tells whether the journal's final segment ended mid-record;
	// when set, every destination is poisoned (the torn record's
	// destination is unknowable) and resynced by snapshot.
	TornTail bool
	// Poisoned lists destinations that will be resynced with a full
	// snapshot: dead-lettered before the crash, holding unacknowledged
	// in-flight deltas at the crash, or everything after a torn tail.
	Poisoned []string
	// CacheSeeded counts destinations whose acked tables were decoded back
	// into the warm cache.
	CacheSeeded int
	// DeadLetters counts restored dead-letter queue entries.
	DeadLetters int
}

// replayState folds the journal's record stream back into a frontier.
type replayState struct {
	epoch    uint64
	down     map[string]bool
	acked    map[string]walAcked
	pending  map[string][]Delta // journaled, not yet acked, in push order
	poisoned map[string]bool
	dlq      []DeadLetter
}

func newReplayState() *replayState {
	return &replayState{
		down:     make(map[string]bool),
		acked:    make(map[string]walAcked),
		pending:  make(map[string][]Delta),
		poisoned: make(map[string]bool),
	}
}

func (s *replayState) apply(snapshot bool, payload []byte) error {
	if snapshot {
		var snap walSnap
		if err := json.Unmarshal(payload, &snap); err != nil {
			return fmt.Errorf("controller: recover snapshot decode: %w", err)
		}
		*s = *newReplayState()
		s.epoch = snap.Epoch
		for _, link := range snap.Down {
			s.down[link] = true
		}
		for dest, a := range snap.Acked {
			if a.Table == nil {
				a.Table = make(map[string]TableEntry)
			}
			s.acked[dest] = a
		}
		for _, dest := range snap.Poisoned {
			s.poisoned[dest] = true
		}
		for _, dl := range snap.DLQ {
			s.dlq = append(s.dlq, DeadLetter{
				Delta: dl.Delta, Err: errors.New(dl.Err), Attempts: dl.Attempts,
			})
		}
		return nil
	}
	var rec walRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return fmt.Errorf("controller: recover record decode: %w", err)
	}
	switch rec.T {
	case "event":
		if rec.Up {
			delete(s.down, rec.Link)
		} else {
			s.down[rec.Link] = true
		}
		if rec.Epoch > s.epoch {
			s.epoch = rec.Epoch
		}
	case "delta":
		if rec.Delta == nil {
			return errors.New("controller: recover: delta record without delta")
		}
		s.pending[rec.Delta.Dest] = append(s.pending[rec.Delta.Dest], *rec.Delta)
	case "ack":
		// The pusher is FIFO per destination, so acks fold the pending
		// queue front-first up to the acked epoch.
		queue := s.pending[rec.Dest]
		folded := 0
		for _, d := range queue {
			if d.Epoch > rec.Epoch {
				break
			}
			a := s.acked[rec.Dest]
			a.Table = applyDelta(a.Table, d)
			a.Epoch = d.Epoch
			a.Degraded = d.Degraded
			s.acked[rec.Dest] = a
			folded++
		}
		s.pending[rec.Dest] = queue[folded:]
		// A delivered snapshot re-baselines the receiver: poison clears,
		// mirroring the live pusher's clearPoison.
		if s.poisoned[rec.Dest] {
			delete(s.poisoned, rec.Dest)
		}
	case "dead":
		if rec.Delta == nil {
			return errors.New("controller: recover: dead record without delta")
		}
		d := *rec.Delta
		queue := s.pending[d.Dest]
		for i, p := range queue {
			if p.Epoch == d.Epoch {
				s.pending[d.Dest] = append(queue[:i], queue[i+1:]...)
				break
			}
		}
		s.poisoned[d.Dest] = true
		s.dlq = append(s.dlq, DeadLetter{
			Delta: d, Err: errors.New(rec.Err), Attempts: rec.Attempts,
		})
	default:
		return fmt.Errorf("controller: recover: unknown record type %q", rec.T)
	}
	return nil
}

// Recover rebuilds a controller from its journal instead of starting cold.
// cfg.Journal must be freshly opened (journal.Open, no appends yet) over
// the surviving directory. The replayed frontier reconstructs the epoch,
// the down-link set, and each destination's sink-acknowledged table; the
// pusher resumes idempotently (per-destination ack watermarks ensure an
// acked delta is never re-pushed); destinations with in-flight deltas at
// the crash — and every destination after a torn tail — are poisoned, so
// their next push is a full snapshot, which the sink applies as an
// idempotent wholesale replace. Acked tables are decoded back into the
// warm cache so post-restart repairs start warm. Every destination is
// marked dirty: the first reconcile pass recomputes tables against the
// recovered topology and pushes only genuine differences.
//
// Recovery finishes by writing a fresh state snapshot — compacting the
// replayed records — before Run starts; a crash anywhere inside Recover
// leaves the journal replayable again (double-crash safety, proven by the
// crash matrix).
func Recover(cfg Config) (*Controller, RecoveryInfo, error) {
	var info RecoveryInfo
	if cfg.Journal == nil {
		return nil, info, errors.New("controller: Recover requires Config.Journal")
	}
	c, err := New(cfg)
	if err != nil {
		return nil, info, err
	}
	st := newReplayState()
	stats, err := cfg.Journal.Replay(st.apply)
	if err != nil {
		return nil, info, fmt.Errorf("controller: recover replay: %w", err)
	}
	info.Records = stats.Records
	info.SnapshotLoaded = stats.Snapshot
	info.TornTail = stats.TornTail

	// A torn tail means the journal's final records are unattributable:
	// poison every destination and trust nothing beyond the acked epochs.
	if stats.TornTail {
		for _, dest := range c.dests {
			st.poisoned[dest] = true
		}
	}
	for dest, queue := range st.pending {
		if len(queue) > 0 {
			st.poisoned[dest] = true
		}
	}

	c.epoch = st.epoch
	c.obs().Gauge(obs.CtlEpoch).Set(int64(c.epoch))
	var drops []network.EdgeID
	for link := range st.down {
		e, ok := cfg.Base.EdgeByKey(link)
		if !ok {
			return nil, info, fmt.Errorf("controller: recover: journaled link %q not in base topology", link)
		}
		c.down[link] = e
		drops = append(drops, e)
		info.Down = append(info.Down, link)
	}
	sort.Strings(info.Down)
	sort.Slice(drops, func(i, j int) bool { return drops[i] < drops[j] })

	watermarks := make(map[string]uint64, len(st.acked))
	for dest, a := range st.acked {
		watermarks[dest] = a.Epoch
		if st.poisoned[dest] {
			// The sink's exact state is unknowable past the last ack:
			// drop the baseline so the next delta is a full snapshot.
			continue
		}
		c.acked[dest] = a.Table
		c.ackedEpoch[dest] = a.Epoch
		c.ackedDegraded[dest] = a.Degraded
		c.lastPushed[dest] = cloneTable(a.Table)
	}
	for dest := range st.poisoned {
		info.Poisoned = append(info.Poisoned, dest)
	}
	sort.Strings(info.Poisoned)
	info.DeadLetters = len(st.dlq)
	c.push.seedRecovery(info.Poisoned, watermarks, st.dlq)

	// Re-seed the warm cache from trustworthy acked tables so the first
	// repair pass starts warm instead of synthesizing cold. Tables that no
	// longer decode on the recovered topology (e.g. referencing a link
	// that is now down) are skipped, not fatal — the pass will resynthesize.
	if cfg.Cache != nil {
		if topo, terr := network.WithoutEdges(cfg.Base, drops); terr == nil {
			for dest, a := range st.acked {
				if st.poisoned[dest] || a.Degraded || len(a.Table) == 0 {
					continue
				}
				if r, derr := decodeTable(topo, dest, a.Table); derr == nil {
					c.cachePut(topo, dest, r)
					info.CacheSeeded++
				}
			}
		}
	}

	// Everything is dirty: the first pass recomputes each table and
	// pushes only what actually differs from the acked baseline.
	for _, dest := range c.dests {
		c.dirty[dest] = true
	}
	c.inbox.signal()

	// Seal recovery with a fresh snapshot, compacting the replayed
	// records. This write is itself a journaled crash point: dying here
	// leaves either the old records (recovered again) or the snapshot.
	ferr := func() error {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.walSnapshotLocked()
		return c.walFatal
	}()
	if ferr != nil {
		return nil, info, fmt.Errorf("controller: recover snapshot: %w", ferr)
	}
	info.Epoch = c.epoch
	return c, info, nil
}

// cloneTable copies a wire table so recovered state never aliases the
// acked baseline.
func cloneTable(t map[string]TableEntry) map[string]TableEntry {
	if t == nil {
		return nil
	}
	out := make(map[string]TableEntry, len(t))
	for k, v := range t {
		out[k] = v
	}
	return out
}
