package controller

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
)

// Sink is the southbound push target: whatever consumes forwarding table
// deltas — a REST endpoint on a switch agent, a message bus, or an
// in-memory test double.
//
// Push must respect ctx (each attempt runs under the pusher's per-push
// timeout) and classify its failures: return a *TransientError (or an error
// wrapping context.DeadlineExceeded) for conditions worth retrying;
// anything else is permanent and dead-letters the delta.
type Sink interface {
	Push(ctx context.Context, d Delta) error
}

// TransientError marks a push failure as retryable. The pusher retries it
// with full-jitter backoff up to its attempt budget; all other errors
// dead-letter immediately.
type TransientError struct{ Err error }

func (e *TransientError) Error() string { return fmt.Sprintf("transient: %v", e.Err) }
func (e *TransientError) Unwrap() error { return e.Err }

// Transient wraps err as retryable. A nil err returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// retryablePush reports whether a push error is worth another attempt: an
// explicit TransientError, or a per-attempt timeout (the sink may just be
// slow; the next attempt gets a fresh budget).
func retryablePush(err error) bool {
	var te *TransientError
	return errors.As(err, &te) || errors.Is(err, context.DeadlineExceeded)
}

// MemSink is the in-memory Sink for tests and simulations. It applies every
// delta to a per-destination wire-form table (receiver semantics), records
// the push log, and can script failures per call.
type MemSink struct {
	mu     sync.Mutex
	pushes []Delta
	tables map[string]map[string]TableEntry
	epochs map[string]uint64

	// FailNext, when non-nil, is consulted before each push with the
	// 0-based push attempt ordinal; a non-nil return fails the push with
	// that error and the delta is not applied.
	FailNext func(call int, d Delta) error
	calls    int

	// Block, when non-nil, is closed by the test to release pushes; until
	// then Push waits on it or ctx, exercising the per-push timeout.
	Block chan struct{}
}

// NewMemSink returns an empty in-memory sink.
func NewMemSink() *MemSink {
	return &MemSink{
		tables: make(map[string]map[string]TableEntry),
		epochs: make(map[string]uint64),
	}
}

// Push implements Sink.
func (m *MemSink) Push(ctx context.Context, d Delta) error {
	if err := m.gate(ctx, d); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if last, ok := m.epochs[d.Dest]; ok && d.Epoch < last {
		return fmt.Errorf("memsink: epoch regression for %s: %d after %d", d.Dest, d.Epoch, last)
	}
	m.pushes = append(m.pushes, d)
	m.tables[d.Dest] = applyDelta(m.tables[d.Dest], d)
	m.epochs[d.Dest] = d.Epoch
	return nil
}

// gate runs the scripted failure and blocking hooks outside the state lock.
func (m *MemSink) gate(ctx context.Context, d Delta) error {
	m.mu.Lock()
	call := m.calls
	m.calls++
	fail := m.FailNext
	block := m.Block
	m.mu.Unlock()
	if block != nil {
		select {
		case <-block:
		case <-ctx.Done():
			return context.Cause(ctx)
		}
	}
	if fail != nil {
		if err := fail(call, d); err != nil {
			return err
		}
	}
	return context.Cause(ctx)
}

// Pushes returns the applied-push log in order.
func (m *MemSink) Pushes() []Delta {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Delta(nil), m.pushes...)
}

// Table returns the receiver-side table of a destination, reconstructed by
// applying its delta stream in order.
func (m *MemSink) Table(dest string) map[string]TableEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]TableEntry, len(m.tables[dest]))
	for k, v := range m.tables[dest] {
		out[k] = v
	}
	return out
}

// Epoch returns the last applied epoch of a destination.
func (m *MemSink) Epoch(dest string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epochs[dest]
}

// RESTSink POSTs deltas as JSON to a fixed URL — the wire sink for switch
// agents speaking the obvious protocol. HTTP 5xx responses and transport
// errors are transient (the agent may be restarting); 4xx responses are
// permanent (the delta itself is rejected) and dead-letter.
type RESTSink struct {
	// URL receives POSTs with Content-Type application/json.
	URL string
	// Client defaults to http.DefaultClient. Per-push timeouts come from
	// the pusher's context, not the client.
	Client *http.Client
}

// Push implements Sink.
func (r *RESTSink) Push(ctx context.Context, d Delta) error {
	body, err := json.Marshal(d)
	if err != nil {
		return err // permanent: the delta cannot be encoded
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.URL, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	client := r.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return context.Cause(ctx)
		}
		return Transient(err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode < 300:
		return nil
	case resp.StatusCode >= 500:
		return Transient(fmt.Errorf("restsink: %s", resp.Status))
	default:
		return fmt.Errorf("restsink: %s", resp.Status)
	}
}
