package controller

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"syrep/internal/journal"
)

// This file is the controller's write-ahead-journal integration. With
// Config.Journal set, every state transition is journaled *before* it takes
// downstream effect:
//
//   - an accepted state-changing link event (with the epoch it advanced to)
//     is appended in applyBatch and synced before the repair pass runs;
//   - a computed delta is appended in finishPass and synced before the
//     pusher may contact the sink, so any delta the sink has ever seen is
//     durable — the invariant that makes recovered epochs dominate sink
//     epochs;
//   - a southbound ack is appended after the sink accepted the delta (the
//     sink is authoritative: a crash between ack and journal merely
//     re-snapshots the destination on recovery);
//   - a dead-letter is appended when the pusher gives up on a delta, so
//     recovery re-poisons the destination.
//
// All appends happen under c.mu, which makes the periodic state snapshot
// (also under c.mu) atomic with respect to the record stream: a record can
// never fall between the snapshotted state and the snapshot record that
// compacts it away.
//
// The first journal failure latches (the journal refuses further work and
// the controller records walFatal): a controller that cannot persist its
// frontier must stop rather than keep absorbing events it would forget.

// walRecord is one journaled transition, JSON-framed so the journal dump is
// operator-readable. T selects the arm; unused fields stay empty.
type walRecord struct {
	// T is "event", "delta", "ack", or "dead".
	T string `json:"t"`
	// Link and Up describe an applied state-changing event; Epoch is the
	// epoch the event advanced the topology to.
	Link string `json:"link,omitempty"`
	Up   bool   `json:"up,omitempty"`
	// Epoch doubles as the acked epoch for "ack" records.
	Epoch uint64 `json:"epoch,omitempty"`
	// Dest names the acked destination for "ack" records.
	Dest string `json:"dest,omitempty"`
	// Delta carries the full delta for "delta" and "dead" records.
	Delta *Delta `json:"delta,omitempty"`
	// Err and Attempts describe a "dead" record's failure.
	Err      string `json:"err,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
}

// walAcked is one destination's sink-acknowledged state inside a snapshot.
type walAcked struct {
	Epoch    uint64                `json:"epoch"`
	Degraded bool                  `json:"degraded,omitempty"`
	Table    map[string]TableEntry `json:"table"`
}

// walDeadLetter is a dead-letter queue entry in snapshot wire form (the
// in-memory DeadLetter holds an error value, which JSON cannot round-trip).
type walDeadLetter struct {
	Delta    Delta  `json:"delta"`
	Err      string `json:"err"`
	Attempts int    `json:"attempts"`
}

// walSnap is the full-state snapshot record: everything Recover needs to
// reconstruct the reconciliation frontier without the compacted records.
type walSnap struct {
	Epoch    uint64              `json:"epoch"`
	Down     []string            `json:"down,omitempty"`
	Acked    map[string]walAcked `json:"acked,omitempty"`
	Poisoned []string            `json:"poisoned,omitempty"`
	DLQ      []walDeadLetter     `json:"dlq,omitempty"`
}

// walLatchLocked records the first journal failure (c.mu held) and wakes
// the run loop: a failure can latch on the pusher goroutine (ack and
// dead-letter records), and with no further events arriving, Run would
// otherwise block on the inbox forever without noticing it must stop.
func (c *Controller) walLatchLocked(err error) {
	if c.walFatal != nil {
		return
	}
	c.walFatal = err
	c.inbox.signal()
}

// walAppendLocked journals one record (c.mu held). Failures latch into
// walFatal; the run loop surfaces it and Run returns the journal error.
func (c *Controller) walAppendLocked(rec walRecord) {
	if c.cfg.Journal == nil || c.walFatal != nil {
		return
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		c.walLatchLocked(fmt.Errorf("controller: journal encode: %w", err))
		return
	}
	if err := c.cfg.Journal.Append(payload); err != nil {
		c.walLatchLocked(err)
		return
	}
	c.walAppends++
}

// walSyncLocked makes journaled records durable (c.mu held). Callers batch:
// applyBatch syncs once per drained batch, finishPass once per pass.
func (c *Controller) walSyncLocked() {
	if c.cfg.Journal == nil || c.walFatal != nil {
		return
	}
	if err := c.cfg.Journal.Sync(); err != nil {
		c.walLatchLocked(err)
	}
}

// journalErr returns the latched journal failure, nil while healthy.
func (c *Controller) journalErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.walFatal
}

// walStateLocked assembles the snapshot of the current frontier (c.mu
// held). Pusher state is read under its own lock; the c.mu → p.mu order is
// safe because no pusher path locks them nested the other way.
func (c *Controller) walStateLocked() walSnap {
	snap := walSnap{Epoch: c.epoch}
	for link := range c.down {
		snap.Down = append(snap.Down, link)
	}
	sort.Strings(snap.Down)
	if len(c.acked) > 0 {
		snap.Acked = make(map[string]walAcked, len(c.acked))
		for dest, table := range c.acked {
			snap.Acked[dest] = walAcked{
				Epoch:    c.ackedEpoch[dest],
				Degraded: c.ackedDegraded[dest],
				Table:    table,
			}
		}
	}
	snap.Poisoned = c.push.poisonedDests()
	for _, dl := range c.push.deadLetters() {
		snap.DLQ = append(snap.DLQ, walDeadLetter{
			Delta: dl.Delta, Err: dl.Err.Error(), Attempts: dl.Attempts,
		})
	}
	return snap
}

// walMaybeSnapshot compacts the journal once enough records accumulated
// since the last snapshot. Called between reconcile passes, off the hot
// paths that hold no locks.
func (c *Controller) walMaybeSnapshot() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.Journal == nil || c.walFatal != nil || c.walAppends < c.cfg.SnapshotEvery {
		return
	}
	c.walSnapshotLocked()
}

// walSnapshotLocked writes the state snapshot unconditionally (c.mu held).
func (c *Controller) walSnapshotLocked() {
	payload, err := json.Marshal(c.walStateLocked())
	if err != nil {
		c.walLatchLocked(fmt.Errorf("controller: journal snapshot encode: %w", err))
		return
	}
	if err := c.cfg.Journal.Snapshot(payload); err != nil {
		c.walLatchLocked(err)
		return
	}
	c.walAppends = 0
}

// ackLocked folds a delivered delta into the sink-acknowledged state and
// journals the ack (c.mu held). The fold mirrors the receiver exactly
// (applyDelta), so the acked table IS what the sink holds.
func (c *Controller) ackLocked(d Delta) {
	if c.cfg.Journal == nil {
		return
	}
	c.acked[d.Dest] = applyDelta(c.acked[d.Dest], d)
	c.ackedEpoch[d.Dest] = d.Epoch
	c.ackedDegraded[d.Dest] = d.Degraded
	c.walAppendLocked(walRecord{T: "ack", Dest: d.Dest, Epoch: d.Epoch})
	c.walSyncLocked()
}

// deadLocked journals a dead-lettered delta (c.mu held).
func (c *Controller) deadLocked(d Delta, cause error, attempts int) {
	if c.cfg.Journal == nil {
		return
	}
	c.walAppendLocked(walRecord{T: "dead", Delta: &d, Err: cause.Error(), Attempts: attempts})
	c.walSyncLocked()
}

// DumpJournal walks a journal directory read-only and renders each record
// as one JSON line on w — the implementation behind syrep-ctl's
// -journal-dump. Snapshot records are prefixed so the epoch baseline is
// visible in the stream.
func DumpJournal(fsys journal.FS, w io.Writer) (journal.ReplayStats, error) {
	return journal.Walk(fsys, func(snapshot bool, payload []byte) error {
		kind := []byte(`{"record":"wal","body":`)
		if snapshot {
			kind = []byte(`{"record":"snapshot","body":`)
		}
		if _, err := w.Write(kind); err != nil {
			return err
		}
		if _, err := w.Write(payload); err != nil {
			return err
		}
		_, err := w.Write([]byte("}\n"))
		return err
	})
}
