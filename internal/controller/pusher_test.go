package controller

import (
	"context"
	"errors"
	"testing"
	"time"

	"syrep/internal/obs"
	"syrep/internal/retry"
)

// resultLog collects onResult callbacks for direct pusher tests.
type resultLog struct {
	jobs []pushJob
	errs []error
}

func (l *resultLog) record(j pushJob, err error) {
	l.jobs = append(l.jobs, j)
	l.errs = append(l.errs, err)
}

// newTestPusher wires a pusher the way the controller does, with a fast
// deterministic backoff and a tight per-push timeout.
func newTestPusher(sink Sink, log *resultLog) (*pusher, *obs.Observer) {
	o := obs.New(nil)
	p := newPusher(sink, 16, log.record)
	p.backoff = retry.New(time.Millisecond, 4*time.Millisecond, 1)
	p.timeout = 50 * time.Millisecond
	p.attempts = 3
	p.obs = o
	return p, o
}

func patchDelta(dest string, epoch uint64) Delta {
	return Delta{Dest: dest, Epoch: epoch, Set: []TableEntry{{In: "e", At: dest, Prio: []string{"e"}}}}
}

// TestPusherTransientRetry: a transient first attempt is retried with
// backoff and the delta is delivered on the second.
func TestPusherTransientRetry(t *testing.T) {
	sink := NewMemSink()
	sink.FailNext = func(call int, d Delta) error {
		if call == 0 {
			return Transient(errors.New("agent restarting"))
		}
		return nil
	}
	var log resultLog
	p, o := newTestPusher(sink, &log)

	p.process(context.Background(), pushJob{delta: patchDelta("s0", 1)})

	if len(log.errs) != 1 || log.errs[0] != nil {
		t.Fatalf("onResult = %v, want one nil result", log.errs)
	}
	if got := len(sink.Pushes()); got != 1 {
		t.Fatalf("sink applied %d pushes, want 1", got)
	}
	snap := o.Snapshot()
	if snap.Counter(obs.CtlPushRetries) != 1 {
		t.Errorf("push retries = %d, want 1", snap.Counter(obs.CtlPushRetries))
	}
	if snap.Counter(obs.CtlPushes) != 1 || snap.Counter(obs.CtlDeadLetters) != 0 {
		t.Errorf("pushes=%d deadletters=%d, want 1/0",
			snap.Counter(obs.CtlPushes), snap.Counter(obs.CtlDeadLetters))
	}
}

// TestPusherPermanentError: a non-transient sink error dead-letters on the
// first attempt — no retries — and poisons the destination.
func TestPusherPermanentError(t *testing.T) {
	boom := errors.New("400 malformed delta")
	sink := NewMemSink()
	sink.FailNext = func(int, Delta) error { return boom }
	var log resultLog
	p, o := newTestPusher(sink, &log)

	p.process(context.Background(), pushJob{delta: patchDelta("s0", 1)})

	if len(log.errs) != 1 {
		t.Fatalf("got %d results, want 1", len(log.errs))
	}
	var dle *DeadLetterError
	if !errors.As(log.errs[0], &dle) {
		t.Fatalf("result = %v, want *DeadLetterError", log.errs[0])
	}
	if dle.Attempts != 1 || !errors.Is(dle, boom) || dle.Dest != "s0" || dle.Epoch != 1 {
		t.Errorf("dead letter = %+v, want 1 attempt wrapping the sink error", dle)
	}
	if !p.awaitingResync("s0") {
		t.Error("destination not poisoned after dead-letter")
	}
	if dl := p.deadLetters(); len(dl) != 1 || dl[0].Attempts != 1 {
		t.Errorf("dlq = %+v, want one entry", dl)
	}
	if o.Snapshot().Counter(obs.CtlDeadLetters) != 1 {
		t.Error("CtlDeadLetters not incremented")
	}
}

// TestPusherAttemptsExhausted: persistent transient failures consume the
// whole attempt budget, then dead-letter.
func TestPusherAttemptsExhausted(t *testing.T) {
	sink := NewMemSink()
	sink.FailNext = func(int, Delta) error { return Transient(errors.New("still down")) }
	var log resultLog
	p, o := newTestPusher(sink, &log)

	p.process(context.Background(), pushJob{delta: patchDelta("s0", 1)})

	var dle *DeadLetterError
	if !errors.As(log.errs[0], &dle) {
		t.Fatalf("result = %v, want *DeadLetterError", log.errs[0])
	}
	if dle.Attempts != p.attempts {
		t.Errorf("attempts = %d, want the full budget %d", dle.Attempts, p.attempts)
	}
	if got := o.Snapshot().Counter(obs.CtlPushRetries); got != int64(p.attempts-1) {
		t.Errorf("retries = %d, want %d", got, p.attempts-1)
	}
}

// TestPusherPerPushTimeout: a sink that never answers trips the per-attempt
// timeout; timeouts are retryable, so the budget drains before the
// dead-letter.
func TestPusherPerPushTimeout(t *testing.T) {
	sink := NewMemSink()
	sink.Block = make(chan struct{}) // never closed
	var log resultLog
	p, _ := newTestPusher(sink, &log)
	p.timeout = 10 * time.Millisecond
	p.attempts = 2

	start := time.Now()
	p.process(context.Background(), pushJob{delta: patchDelta("s0", 1)})

	var dle *DeadLetterError
	if !errors.As(log.errs[0], &dle) {
		t.Fatalf("result = %v, want *DeadLetterError", log.errs[0])
	}
	if !errors.Is(dle, context.DeadlineExceeded) {
		t.Errorf("cause = %v, want DeadlineExceeded", dle.Err)
	}
	if dle.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (timeouts are retryable)", dle.Attempts)
	}
	if el := time.Since(start); el > time.Second {
		t.Errorf("per-push timeout did not bound the attempt: took %v", el)
	}
}

// TestPusherResync: after a dead-letter, patch deltas for the destination
// are skipped with ErrResyncPending; a delivered snapshot clears the poison
// and patches flow again. Other destinations are unaffected throughout.
func TestPusherResync(t *testing.T) {
	boom := errors.New("rejected")
	sink := NewMemSink()
	sink.FailNext = func(call int, d Delta) error {
		if call == 0 {
			return boom
		}
		return nil
	}
	var log resultLog
	p, o := newTestPusher(sink, &log)
	ctx := context.Background()

	p.process(ctx, pushJob{delta: patchDelta("s0", 1)}) // dead-letters, poisons s0
	p.process(ctx, pushJob{delta: patchDelta("s0", 2)}) // skipped: awaiting resync
	p.process(ctx, pushJob{delta: patchDelta("s1", 2)}) // other dest unaffected
	snap := Delta{Dest: "s0", Epoch: 3, Snapshot: true,
		Set: []TableEntry{{In: "e", At: "s0", Prio: []string{"e"}}}}
	p.process(ctx, pushJob{delta: snap})                // snapshot clears poison
	p.process(ctx, pushJob{delta: patchDelta("s0", 4)}) // flows again

	if len(log.errs) != 5 {
		t.Fatalf("got %d results, want 5", len(log.errs))
	}
	var skip *DeadLetterError
	if !errors.As(log.errs[1], &skip) || !errors.Is(skip, ErrResyncPending) || skip.Attempts != 0 {
		t.Errorf("patch behind dead-letter: %v, want 0-attempt ErrResyncPending dead letter", log.errs[1])
	}
	for i, want := range []error{nil, nil, nil} {
		if got := log.errs[2+i]; !errors.Is(got, want) {
			t.Errorf("result %d = %v, want %v", 2+i, got, want)
		}
	}
	if p.awaitingResync("s0") {
		t.Error("snapshot did not clear the poison")
	}
	if got := o.Snapshot().Counter(obs.CtlResyncs); got != 1 {
		t.Errorf("CtlResyncs = %d, want 1", got)
	}
	if e := sink.Epoch("s0"); e != 4 {
		t.Errorf("sink epoch for s0 = %d, want 4", e)
	}
}

// TestPusherForceCancelDrain: when the drain context is cancelled, run
// still settles every queued job — none are lost — and exits once the queue
// closes.
func TestPusherForceCancelDrain(t *testing.T) {
	sink := NewMemSink()
	sink.Block = make(chan struct{}) // pushes would hang; force-cancel must not care
	var log resultLog
	p, _ := newTestPusher(sink, &log)

	p.queue <- pushJob{delta: patchDelta("s0", 1)}
	p.queue <- pushJob{delta: patchDelta("s1", 1)}
	close(p.queue)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	done := make(chan struct{})
	go func() {
		p.run(ctx)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("run did not exit after force-cancel with closed queue")
	}
	if len(log.errs) != 2 {
		t.Fatalf("settled %d jobs, want 2", len(log.errs))
	}
	for i, err := range log.errs {
		var dle *DeadLetterError
		if !errors.As(err, &dle) {
			t.Errorf("job %d settled with %v, want *DeadLetterError", i, err)
		}
	}
}
