package controller

import (
	"fmt"
	"sort"

	"syrep/internal/network"
	"syrep/internal/routing"
)

// TableEntry is one forwarding rule in wire form: all references are
// canonical strings (edge keys and node names), so an entry computed on one
// topology rebuild compares equal to the same rule on another even though
// the dense integer ids were renumbered.
type TableEntry struct {
	// In is the canonical key of the in-edge (loopback keys for locally
	// originated traffic).
	In string `json:"in"`
	// At is the node name where the rule applies.
	At string `json:"at"`
	// Prio is the rule's priority list of out-edges, canonical keys,
	// highest priority first.
	Prio []string `json:"prio"`
}

// entryKey is the map key identifying a rule slot: in-edge key + node name.
func (e TableEntry) entryKey() string { return e.In + "@" + e.At }

func (e TableEntry) equal(o TableEntry) bool {
	if e.In != o.In || e.At != o.At || len(e.Prio) != len(o.Prio) {
		return false
	}
	for i := range e.Prio {
		if e.Prio[i] != o.Prio[i] {
			return false
		}
	}
	return true
}

// Delta is one southbound push: the changed and removed rules of a single
// destination's table between two epochs, or (when Snapshot is set) the full
// table for resynchronization after a lost delta.
type Delta struct {
	// Dest is the destination node name.
	Dest string `json:"dest"`
	// Epoch is the topology epoch the table was repaired against. A sink
	// must apply deltas in epoch order; the pusher guarantees it.
	Epoch uint64 `json:"epoch"`
	// Snapshot marks a full-table resync: the receiver must replace its
	// table wholesale instead of patching (Del is empty on snapshots).
	Snapshot bool `json:"snapshot,omitempty"`
	// Degraded flags a heuristic-only table pushed while the repair
	// breaker was open; it forwards but carries no verified k-resilience.
	Degraded bool `json:"degraded,omitempty"`
	// Set lists rules added or changed since the previous push.
	Set []TableEntry `json:"set,omitempty"`
	// Del lists entry keys ("in@at") removed since the previous push.
	Del []string `json:"del,omitempty"`
}

// Empty reports whether the delta carries no change (a repair that
// reproduced the previously pushed table exactly).
func (d Delta) Empty() bool { return !d.Snapshot && len(d.Set) == 0 && len(d.Del) == 0 }

// encodeTable renders a routing table in wire form, keyed by entryKey.
// Holes are skipped: only complete rules are pushed.
func encodeTable(r *routing.Routing) map[string]TableEntry {
	net := r.Network()
	out := make(map[string]TableEntry, r.NumEntries())
	for _, k := range r.Keys() {
		prio, ok := r.Get(k.In, k.At)
		if !ok {
			continue
		}
		e := TableEntry{
			In:   net.EdgeKey(k.In),
			At:   net.NodeName(k.At),
			Prio: make([]string, len(prio)),
		}
		for i, out := range prio {
			e.Prio[i] = net.EdgeKey(out)
		}
		out[e.entryKey()] = e
	}
	return out
}

// diffTables computes the delta from prev to next in deterministic
// (sorted-key) order. A nil prev yields a snapshot: every rule in Set,
// Snapshot marked, nothing in Del.
func diffTables(prev, next map[string]TableEntry) (set []TableEntry, del []string, snapshot bool) {
	keys := make([]string, 0, len(next))
	for k := range next {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if prev == nil {
		for _, k := range keys {
			set = append(set, next[k])
		}
		return set, nil, true
	}
	for _, k := range keys {
		if p, ok := prev[k]; !ok || !p.equal(next[k]) {
			set = append(set, next[k])
		}
	}
	gone := make([]string, 0)
	for k := range prev {
		if _, ok := next[k]; !ok {
			gone = append(gone, k)
		}
	}
	sort.Strings(gone)
	return set, gone, false
}

// buildDelta assembles the push for one destination table against what the
// sink last acknowledged.
func buildDelta(dest string, epoch uint64, degraded bool, prev map[string]TableEntry, r *routing.Routing) (Delta, map[string]TableEntry) {
	next := encodeTable(r)
	set, del, snap := diffTables(prev, next)
	return Delta{
		Dest:     dest,
		Epoch:    epoch,
		Snapshot: snap,
		Degraded: degraded,
		Set:      set,
		Del:      del,
	}, next
}

// decodeTable resolves a wire-form table back into a routing on net — the
// inverse of encodeTable, used by recovery to re-seed the warm cache from
// journaled acked tables. An entry naming a node or edge absent from net
// (e.g. a link that is down on the recovered topology) fails the decode;
// callers treat that as "no seed", not an error.
func decodeTable(net *network.Network, dest string, table map[string]TableEntry) (*routing.Routing, error) {
	destID := net.NodeByName(dest)
	if destID < 0 {
		return nil, fmt.Errorf("controller: decode: destination %q not in topology", dest)
	}
	r := routing.New(net, destID)
	for _, e := range table {
		in, ok := net.EdgeByKey(e.In)
		if !ok {
			return nil, fmt.Errorf("controller: decode: unknown in-edge %q", e.In)
		}
		at := net.NodeByName(e.At)
		if at < 0 {
			return nil, fmt.Errorf("controller: decode: unknown node %q", e.At)
		}
		prio := make([]network.EdgeID, len(e.Prio))
		for i, key := range e.Prio {
			out, ok := net.EdgeByKey(key)
			if !ok {
				return nil, fmt.Errorf("controller: decode: unknown out-edge %q", key)
			}
			prio[i] = out
		}
		if err := r.Set(in, at, prio); err != nil {
			return nil, fmt.Errorf("controller: decode: %w", err)
		}
	}
	return r, nil
}

// applyDelta patches a wire-form table with a delta — the receiver-side
// semantics, used by MemSink and tests to prove a delta stream reconstructs
// the sender's table exactly.
func applyDelta(table map[string]TableEntry, d Delta) map[string]TableEntry {
	if d.Snapshot || table == nil {
		table = make(map[string]TableEntry, len(d.Set))
	}
	for _, k := range d.Del {
		delete(table, k)
	}
	for _, e := range d.Set {
		table[e.entryKey()] = e
	}
	return table
}
