package controller

import (
	"errors"
	"testing"
	"time"
)

func ev(link string, up bool) Event {
	return Event{Link: link, Up: up, At: time.Unix(0, 0)}
}

// TestInboxCoalescing: a flap on one link occupies one slot and collapses
// to its final state, with the absorbed events retained for settlement.
func TestInboxCoalescing(t *testing.T) {
	in := newInbox(8)
	for i, e := range []Event{ev("l1", false), ev("l1", true), ev("l1", false)} {
		coalesced, err := in.offer(e)
		if err != nil {
			t.Fatalf("offer %d: %v", i, err)
		}
		if want := i > 0; coalesced != want {
			t.Errorf("offer %d: coalesced = %v, want %v", i, coalesced, want)
		}
	}
	if d := in.depth(); d != 1 {
		t.Fatalf("depth = %d, want 1 (one link)", d)
	}
	batch := in.drain()
	if len(batch) != 1 {
		t.Fatalf("drained %d slots, want 1", len(batch))
	}
	slot := batch[0]
	if slot.ev.Up || slot.ev.Link != "l1" {
		t.Errorf("final state = %+v, want down l1", slot.ev)
	}
	if len(slot.absorbed) != 2 {
		t.Errorf("absorbed %d events, want 2", len(slot.absorbed))
	}
	if in.depth() != 0 {
		t.Error("drain left events behind")
	}
}

// TestInboxFIFO: slots drain in first-arrival order even when later events
// coalesce into earlier slots.
func TestInboxFIFO(t *testing.T) {
	in := newInbox(8)
	for _, e := range []Event{ev("a", false), ev("b", false), ev("c", false), ev("b", true)} {
		if _, err := in.offer(e); err != nil {
			t.Fatal(err)
		}
	}
	batch := in.drain()
	var order []string
	for _, s := range batch {
		order = append(order, s.ev.Link)
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Errorf("drain order = %v, want [a b c]", order)
	}
	if !batch[1].ev.Up {
		t.Error("slot b did not coalesce to its final (up) state")
	}
}

// TestInboxOverflow: capacity bounds distinct links; a full inbox rejects
// with the retryable ErrOverflow but still coalesces onto existing slots.
func TestInboxOverflow(t *testing.T) {
	in := newInbox(2)
	for _, l := range []string{"a", "b"} {
		if _, err := in.offer(ev(l, false)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := in.offer(ev("c", false)); !errors.Is(err, ErrOverflow) {
		t.Fatalf("third link: err = %v, want ErrOverflow", err)
	}
	if !Retryable(ErrOverflow) {
		t.Error("ErrOverflow must be retryable")
	}
	// Coalescing onto an occupied slot needs no capacity.
	if coalesced, err := in.offer(ev("a", true)); err != nil || !coalesced {
		t.Errorf("coalescing offer on full inbox: coalesced=%v err=%v", coalesced, err)
	}
}

// TestInboxClosed: a closed inbox rejects everything but keeps its pending
// events for the shutdown drain.
func TestInboxClosed(t *testing.T) {
	in := newInbox(4)
	if _, err := in.offer(ev("a", false)); err != nil {
		t.Fatal(err)
	}
	in.close()
	if _, err := in.offer(ev("b", false)); !errors.Is(err, ErrClosed) {
		t.Fatalf("offer after close: err = %v, want ErrClosed", err)
	}
	if got := len(in.drain()); got != 1 {
		t.Errorf("close dropped pending events: drained %d, want 1", got)
	}
}

// TestInboxWake: offers signal the wake channel exactly once per idle
// period (1-buffered), and signalling never blocks.
func TestInboxWake(t *testing.T) {
	in := newInbox(4)
	for i := 0; i < 10; i++ {
		in.signal() // must never block even when the buffer is full
	}
	select {
	case <-in.wake:
	default:
		t.Fatal("wake not signalled")
	}
	select {
	case <-in.wake:
		t.Fatal("wake signalled more than once while idle")
	default:
	}
	if _, err := in.offer(ev("a", false)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-in.wake:
	default:
		t.Error("offer did not signal wake")
	}
}
