package controller

import (
	"context"
	"errors"
	"testing"
	"time"

	"syrep/internal/obs"
	"syrep/internal/resilience"
	"syrep/internal/resilience/faultinject"
	"syrep/internal/server"
)

// harness runs one controller with a MemSink and a settlement channel.
type harness struct {
	t       *testing.T
	ctl     *Controller
	sink    *MemSink
	obs     *obs.Observer
	settle  chan Settlement
	links   []string
	cancel  context.CancelFunc
	exit    chan error
	exited  bool
	stopped bool
}

// stop cancels Run and waits for it to exit (idempotent).
func (h *harness) stop() {
	if h.stopped {
		return
	}
	h.stopped = true
	h.cancel()
	if h.exited {
		return
	}
	select {
	case <-h.exit:
		h.exited = true
	case <-time.After(30 * time.Second):
		h.t.Error("controller did not exit")
	}
}

// startCtl boots a controller on SimNetwork(6) watching s0, applies mod to
// the config, and runs it until the test ends.
func startCtl(t *testing.T, mod func(*Config)) *harness {
	t.Helper()
	base, err := SimNetwork(6)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{
		t:      t,
		sink:   NewMemSink(),
		obs:    obs.New(nil),
		settle: make(chan Settlement, 4096),
		links:  base.EdgeKeys(),
	}
	cfg := Config{
		Base:          base,
		Dests:         []string{"s0"},
		K:             1,
		Sink:          h.sink,
		Breaker:       server.BreakerConfig{Threshold: 3, Cooldown: time.Minute},
		RepairTimeout: 2 * time.Second,
		PushAttempts:  3,
		RetryBase:     time.Millisecond,
		RetryCap:      4 * time.Millisecond,
		Obs:           h.obs,
		OnSettle:      func(s Settlement) { h.settle <- s },
	}
	if mod != nil {
		mod(&cfg)
	}
	h.ctl, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	h.cancel = cancel
	h.exit = make(chan error, 1)
	go func() { h.exit <- h.ctl.Run(ctx) }()
	t.Cleanup(h.stop)
	return h
}

// wait collects n settlements or fails.
func (h *harness) wait(t *testing.T, n int) []Settlement {
	t.Helper()
	out := make([]Settlement, 0, n)
	deadline := time.After(30 * time.Second)
	for len(out) < n {
		select {
		case s := <-h.settle:
			out = append(out, s)
		case <-deadline:
			t.Fatalf("timed out with %d/%d settlements", len(out), n)
		}
	}
	return out
}

// TestControllerPushedLifecycle: a link-down event repairs the watched
// destination, pushes a delta, and settles pushed; the sink's reconstructed
// table matches the controller's. Restoring the link settles the same way.
func TestControllerPushedLifecycle(t *testing.T) {
	h := startCtl(t, nil)
	link := h.links[0]

	if err := h.ctl.Offer(Event{Link: link, Up: false}); err != nil {
		t.Fatal(err)
	}
	s := h.wait(t, 1)[0]
	if s.Outcome != OutcomePushed || s.Err != nil {
		t.Fatalf("settlement = %+v, want pushed", s)
	}
	if s.Epoch != 1 || h.ctl.Epoch() != 1 {
		t.Errorf("epoch = %d/%d, want 1", s.Epoch, h.ctl.Epoch())
	}
	pushes := h.sink.Pushes()
	if len(pushes) != 1 || !pushes[0].Snapshot || pushes[0].Dest != "s0" {
		t.Fatalf("pushes = %+v, want one snapshot for s0", pushes)
	}
	if pushes[0].Degraded {
		t.Error("healthy repair pushed a degraded table")
	}
	if len(h.sink.Table("s0")) == 0 {
		t.Error("sink table empty after snapshot")
	}

	if err := h.ctl.Offer(Event{Link: link, Up: true}); err != nil {
		t.Fatal(err)
	}
	s = h.wait(t, 1)[0]
	if s.Outcome != OutcomePushed || s.Epoch != 2 {
		t.Fatalf("restore settlement = %+v, want pushed at epoch 2", s)
	}
	if got := h.sink.Epoch("s0"); got != 2 {
		t.Errorf("sink epoch = %d, want 2", got)
	}
	snap := h.obs.Snapshot()
	if snap.Counter(obs.CtlColdSynths)+snap.Counter(obs.CtlWarmRepairs) < 2 {
		t.Error("repairs not counted")
	}
	if snap.Histogram(obs.CtlEventLatency).Count != 2 {
		t.Errorf("latency histogram count = %d, want 2", snap.Histogram(obs.CtlEventLatency).Count)
	}
}

// TestControllerNoop: an event that does not change link state settles
// pushed immediately — no epoch bump, no repair, no sink contact.
func TestControllerNoop(t *testing.T) {
	h := startCtl(t, nil)
	if err := h.ctl.Offer(Event{Link: h.links[0], Up: true}); err != nil { // already up
		t.Fatal(err)
	}
	s := h.wait(t, 1)[0]
	if s.Outcome != OutcomePushed || s.Epoch != 0 {
		t.Fatalf("settlement = %+v, want pushed at epoch 0", s)
	}
	if h.ctl.Epoch() != 0 {
		t.Errorf("epoch = %d, want 0", h.ctl.Epoch())
	}
	if n := len(h.sink.Pushes()); n != 0 {
		t.Errorf("%d pushes for a no-op", n)
	}
	if h.obs.Snapshot().Counter(obs.CtlNoops) != 1 {
		t.Error("CtlNoops not counted")
	}
}

// TestControllerUnknownLink: an event naming a link absent from the base
// topology settles as a typed, non-retryable error.
func TestControllerUnknownLink(t *testing.T) {
	h := startCtl(t, nil)
	if err := h.ctl.Offer(Event{Link: "no-such-link", Up: false}); err != nil {
		t.Fatal(err)
	}
	s := h.wait(t, 1)[0]
	if s.Outcome != OutcomeError || !errors.Is(s.Err, ErrUnknownLink) {
		t.Fatalf("settlement = %+v, want ErrUnknownLink", s)
	}
	if Retryable(s.Err) {
		t.Error("unknown link must not be retryable")
	}
}

// TestControllerDegradedOnOpenBreaker: with the repair breaker open, events
// settle degraded and the pushed table is flagged — the controller keeps
// forwarding state flowing on the heuristic path.
func TestControllerDegradedOnOpenBreaker(t *testing.T) {
	h := startCtl(t, nil)
	h.ctl.breaker.Trip(time.Now())

	if err := h.ctl.Offer(Event{Link: h.links[0], Up: false}); err != nil {
		t.Fatal(err)
	}
	s := h.wait(t, 1)[0]
	if s.Outcome != OutcomeDegraded || s.Err != nil {
		t.Fatalf("settlement = %+v, want degraded", s)
	}
	pushes := h.sink.Pushes()
	if len(pushes) != 1 || !pushes[0].Degraded {
		t.Fatalf("pushes = %+v, want one degraded delta", pushes)
	}
	snap := h.obs.Snapshot()
	if snap.Counter(obs.CtlDegraded) != 1 {
		t.Errorf("CtlDegraded = %d, want 1", snap.Counter(obs.CtlDegraded))
	}
	if snap.Counter(obs.CtlColdSynths) != 0 {
		t.Error("cold synthesis ran while the breaker was open")
	}
}

// TestControllerEpochRace: a superseding event injected between a completed
// repair and its push (StageCtlEpoch Call fault) discards the stale pass —
// nothing from the superseded epoch is ever pushed — and both events settle
// against the new epoch.
func TestControllerEpochRace(t *testing.T) {
	faultinject.LeakCheck(t)
	var h *harness
	inj := faultinject.New(faultinject.Fault{
		Stage: resilience.StageCtlEpoch,
		Kind:  faultinject.Call,
		Times: 1,
		Do: func() {
			// Runs on the reconcile goroutine mid-pass: a second link goes
			// down before the first repair's delta is queued.
			if err := h.ctl.Offer(Event{Link: h.links[1], Up: false}); err != nil {
				t.Errorf("racing offer: %v", err)
			}
		},
	})
	h = startCtl(t, func(cfg *Config) { cfg.Hook = inj })

	if err := h.ctl.Offer(Event{Link: h.links[0], Up: false}); err != nil {
		t.Fatal(err)
	}
	ss := h.wait(t, 2)
	for _, s := range ss {
		if s.Outcome != OutcomePushed {
			t.Errorf("settlement = %+v, want pushed", s)
		}
		if s.Epoch != 2 {
			t.Errorf("settled at epoch %d, want 2 (the superseding epoch)", s.Epoch)
		}
	}
	snap := h.obs.Snapshot()
	if snap.Counter(obs.CtlStale) < 1 {
		t.Error("epoch race not detected: CtlStale == 0")
	}
	if snap.Counter(obs.CtlDeadLetters) != 0 {
		t.Error("dead letters during a clean race")
	}
	for i, d := range h.sink.Pushes() {
		if d.Epoch != 2 {
			t.Errorf("push %d carries stale epoch %d, want 2 only", i, d.Epoch)
		}
	}
	// The settled table must reflect both failures: no rule references
	// either downed link.
	down := map[string]bool{h.links[0]: true, h.links[1]: true}
	for k, e := range h.sink.Table("s0") {
		for _, ref := range append([]string{e.In}, e.Prio...) {
			if down[ref] {
				t.Errorf("final table entry %q references downed link %q", k, ref)
			}
		}
	}
}

// TestControllerInboxFault: a scripted admission fault rejects the offer
// before it reaches the inbox, counted as backpressure.
func TestControllerInboxFault(t *testing.T) {
	inj := faultinject.New(faultinject.Fault{
		Stage: resilience.StageCtlInbox,
		Kind:  faultinject.Error,
		Err:   ErrOverflow,
		Times: 1,
	})
	h := startCtl(t, func(cfg *Config) { cfg.Hook = inj })

	err := h.ctl.Offer(Event{Link: h.links[0], Up: false})
	if !errors.Is(err, ErrOverflow) {
		t.Fatalf("offer = %v, want injected ErrOverflow", err)
	}
	if !Retryable(err) {
		t.Error("overflow rejection must be retryable")
	}
	if h.obs.Snapshot().Counter(obs.CtlOverflows) != 1 {
		t.Error("CtlOverflows not counted")
	}
	// The re-offer (backpressure protocol) succeeds and settles.
	if err := h.ctl.Offer(Event{Link: h.links[0], Up: false}); err != nil {
		t.Fatal(err)
	}
	if s := h.wait(t, 1)[0]; s.Outcome != OutcomePushed {
		t.Fatalf("re-offer settlement = %+v, want pushed", s)
	}
}

// TestControllerRepairFault: a scripted repair-stage failure settles the
// event on the error arm with the injected cause.
func TestControllerRepairFault(t *testing.T) {
	boom := errors.New("repair engine on fire")
	inj := faultinject.New(faultinject.Fault{
		Stage: resilience.StageCtlRepair,
		Kind:  faultinject.Error,
		Err:   boom,
	})
	h := startCtl(t, func(cfg *Config) { cfg.Hook = inj })

	if err := h.ctl.Offer(Event{Link: h.links[0], Up: false}); err != nil {
		t.Fatal(err)
	}
	s := h.wait(t, 1)[0]
	if s.Outcome != OutcomeError || !errors.Is(s.Err, boom) {
		t.Fatalf("settlement = %+v, want error wrapping the injected cause", s)
	}
	if n := len(h.sink.Pushes()); n != 0 {
		t.Errorf("%d pushes after a failed repair", n)
	}
}

// TestControllerPushTransientFault: transient push failures burn retries,
// not the event — it still settles pushed once the sink recovers.
func TestControllerPushTransientFault(t *testing.T) {
	inj := faultinject.New(faultinject.Fault{
		Stage: resilience.StageCtlPush,
		Kind:  faultinject.Error,
		Err:   Transient(errors.New("sink flaking")),
		Times: 2,
	})
	h := startCtl(t, func(cfg *Config) { cfg.Hook = inj })

	if err := h.ctl.Offer(Event{Link: h.links[0], Up: false}); err != nil {
		t.Fatal(err)
	}
	s := h.wait(t, 1)[0]
	if s.Outcome != OutcomePushed {
		t.Fatalf("settlement = %+v, want pushed after retries", s)
	}
	snap := h.obs.Snapshot()
	if snap.Counter(obs.CtlPushRetries) != 2 {
		t.Errorf("CtlPushRetries = %d, want 2", snap.Counter(obs.CtlPushRetries))
	}
	if snap.Counter(obs.CtlDeadLetters) != 0 {
		t.Error("transient faults dead-lettered")
	}
}

// TestControllerDeadLetterResync: a permanent push failure settles the event
// with a typed DeadLetterError, then the controller schedules a snapshot
// resync on its own and the sink converges.
func TestControllerDeadLetterResync(t *testing.T) {
	faultinject.LeakCheck(t)
	boom := errors.New("sink rejected the delta")
	inj := faultinject.New(faultinject.Fault{
		Stage: resilience.StageCtlPush,
		Kind:  faultinject.Error,
		Err:   boom,
		Times: 1,
	})
	h := startCtl(t, func(cfg *Config) { cfg.Hook = inj })

	if err := h.ctl.Offer(Event{Link: h.links[0], Up: false}); err != nil {
		t.Fatal(err)
	}
	s := h.wait(t, 1)[0]
	var dle *DeadLetterError
	if s.Outcome != OutcomeError || !errors.As(s.Err, &dle) || !errors.Is(s.Err, boom) {
		t.Fatalf("settlement = %+v, want DeadLetterError wrapping the sink error", s)
	}
	if len(h.ctl.DeadLetters()) != 1 {
		t.Fatalf("dead-letter queue = %+v, want one entry", h.ctl.DeadLetters())
	}

	// The resync is self-scheduled: wait for the snapshot to land.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if e := h.sink.Epoch("s0"); e >= 1 && len(h.sink.Table("s0")) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("resync snapshot never reached the sink")
		}
		time.Sleep(2 * time.Millisecond)
	}
	pushes := h.sink.Pushes()
	last := pushes[len(pushes)-1]
	if !last.Snapshot {
		t.Errorf("resync push = %+v, want a snapshot", last)
	}
	if h.obs.Snapshot().Counter(obs.CtlResyncs) != 1 {
		t.Error("CtlResyncs not counted")
	}
}

// TestControllerFlapCoalescesToOnePush: a down/up/down flap offered before
// the loop wakes collapses to one slot, one repair, one push — and all
// three events settle with that push's outcome.
func TestControllerFlapCoalescesToOnePush(t *testing.T) {
	base, err := SimNetwork(6)
	if err != nil {
		t.Fatal(err)
	}
	settle := make(chan Settlement, 16)
	sink := NewMemSink()
	o := obs.New(nil)
	ctl, err := New(Config{
		Base:     base,
		Dests:    []string{"s0"},
		Sink:     sink,
		Obs:      o,
		OnSettle: func(s Settlement) { settle <- s },
	})
	if err != nil {
		t.Fatal(err)
	}
	link := base.EdgeKeys()[0]
	// Offer the whole flap before Run starts: deterministic coalescing.
	for _, up := range []bool{false, true, false} {
		if err := ctl.Offer(Event{Link: link, Up: up}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	exit := make(chan error, 1)
	go func() { exit <- ctl.Run(ctx) }()
	defer func() { cancel(); <-exit }()

	var ss []Settlement
	deadline := time.After(30 * time.Second)
	for len(ss) < 3 {
		select {
		case s := <-settle:
			ss = append(ss, s)
		case <-deadline:
			t.Fatalf("timed out with %d/3 settlements", len(ss))
		}
	}
	for _, s := range ss {
		if s.Outcome != OutcomePushed || s.Epoch != 1 {
			t.Errorf("settlement = %+v, want pushed at epoch 1", s)
		}
	}
	if n := len(sink.Pushes()); n != 1 {
		t.Errorf("flap produced %d pushes, want exactly 1", n)
	}
	snap := o.Snapshot()
	if snap.Counter(obs.CtlCoalesced) != 2 {
		t.Errorf("CtlCoalesced = %d, want 2", snap.Counter(obs.CtlCoalesced))
	}
	if snap.Counter(obs.CtlRepairs) != 1 {
		t.Errorf("CtlRepairs = %d, want 1 (one slot, one repair)", snap.Counter(obs.CtlRepairs))
	}
}
