// Package controller is the churn-driven repair controller: a long-running
// reconciliation loop that consumes a stream of link up/down events and
// keeps per-destination forwarding tables warm, current, and pushed
// southbound.
//
// The event lifecycle is a strict trichotomy. Every accepted event ends in
// exactly one of
//
//   - a pushed delta (the table change it caused was delivered to the Sink,
//     possibly vacuously when the repaired table did not change),
//   - a flagged degraded table (the repair breaker was open or synthesis
//     failed transiently, so a heuristic-only table was pushed, marked
//     Degraded), or
//   - a clean typed error (dead-lettered push, unknown link, shutdown
//     rejection, or an unrepairable destination).
//
// Reconciliation is epoch-stamped: each state-changing event bumps the
// topology epoch, repairs are computed against an epoch snapshot, and a
// repair that is superseded by a newer event before its push is discarded —
// a stale table is never pushed. Flaps coalesce in the bounded inbox: a
// down/up/down burst on one link occupies one slot and collapses to its
// final state.
package controller

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"syrep/internal/cache"
	"syrep/internal/heuristic"
	"syrep/internal/journal"
	"syrep/internal/network"
	"syrep/internal/obs"
	"syrep/internal/resilience"
	"syrep/internal/retry"
	"syrep/internal/routing"
	"syrep/internal/server"
	"syrep/internal/verify"
)

// Outcome is the terminal state of a settled event.
type Outcome int

const (
	// OutcomePushed settles an event whose table changes were delivered
	// southbound (or required no change).
	OutcomePushed Outcome = iota + 1
	// OutcomeDegraded settles an event served by a heuristic-only table,
	// pushed flagged: it forwards, but carries no verified k-resilience.
	OutcomeDegraded
	// OutcomeError settles an event with a typed error: dead-letter,
	// unknown link, shutdown rejection, or an unrepairable destination.
	OutcomeError
)

func (o Outcome) String() string {
	switch o {
	case OutcomePushed:
		return "pushed"
	case OutcomeDegraded:
		return "degraded"
	case OutcomeError:
		return "error"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Settlement is the terminal accounting record of one event.
type Settlement struct {
	// Event is the settled event (coalesced-away flap events settle too,
	// sharing the outcome of the event that superseded them).
	Event Event
	// Epoch is the topology epoch whose completion settled the event.
	Epoch uint64
	// Outcome is the trichotomy arm.
	Outcome Outcome
	// Err is the typed error of an OutcomeError settlement, nil otherwise.
	Err error
	// Latency is arrival-to-settlement wall time, the SLO quantity.
	Latency time.Duration
}

// ErrShuttingDown rejects events still queued when shutdown began. It is
// retryable against a replacement controller.
var ErrShuttingDown = errors.New("controller: shutting down, re-offer the event")

// ErrUnknownLink settles an event naming a link key absent from the base
// topology.
var ErrUnknownLink = errors.New("controller: unknown link key")

// Retryable reports whether an offer rejection or settlement error is worth
// re-offering later: backpressure and shutdown are; dead letters, unknown
// links, and repair failures are not (retrying the same event reproduces
// them).
func Retryable(err error) bool {
	return errors.Is(err, ErrOverflow) || errors.Is(err, ErrClosed) ||
		errors.Is(err, ErrShuttingDown)
}

// Config assembles a Controller. Base and Sink are required; everything
// else has serviceable defaults.
type Config struct {
	// Base is the reference topology with every link up. Events name its
	// links by canonical edge key.
	Base *network.Network
	// Dests names the destination nodes whose tables the controller keeps
	// current. Empty means every node of Base.
	Dests []string
	// K is the resilience level synthesized and repaired for (default 1).
	K int
	// Sink receives southbound deltas.
	Sink Sink
	// Cache, when non-nil, feeds warm-start repair: the nearest cached
	// table is adapted and endgame-filled instead of synthesizing cold.
	Cache *cache.Cache
	// Breaker configures the repair circuit breaker; consecutive transient
	// repair failures trip it, degrading repairs to heuristic-only tables
	// until the cooldown's half-open probes succeed.
	Breaker server.BreakerConfig
	// InboxCapacity bounds distinct churning links queued (default 256);
	// beyond it Offer rejects with ErrOverflow.
	InboxCapacity int
	// QueueCapacity bounds deltas queued to the pusher (default 256).
	QueueCapacity int
	// RepairTimeout budgets one per-destination repair (default 5s).
	RepairTimeout time.Duration
	// PushTimeout budgets one sink contact (default 2s).
	PushTimeout time.Duration
	// PushAttempts caps sink contacts per delta, first try included
	// (default 4).
	PushAttempts int
	// RetryBase, RetryCap, and RetrySeed shape the pusher's seeded
	// full-jitter backoff (defaults 10ms, 500ms).
	RetryBase time.Duration
	RetryCap  time.Duration
	RetrySeed int64
	// DrainGrace bounds the shutdown flush of queued deltas (default 2s);
	// past it the rest dead-letter.
	DrainGrace time.Duration
	// WarmStartMaxDiff is the edge-diff radius of warm-start seeds
	// (default 4).
	WarmStartMaxDiff int
	// Strategy selects the synthesis strategy (default Combined).
	Strategy resilience.Strategy
	// Obs, when non-nil, observes the controller: event/repair/push
	// counters, inbox and epoch gauges, and the event-latency histogram.
	Obs *obs.Observer
	// Hook is the fault-injection test hook, consulted at the controller
	// stages (resilience.ControllerFaultPoints) and passed through to the
	// repair pipelines. Nil in production.
	Hook resilience.Hook
	// VerifyBackend is passed through to every repair pipeline (cold and
	// warm-start), routing churn-reconciliation verification through an
	// alternative backend such as the polynomial fast path. Nil means
	// brute force.
	VerifyBackend verify.Backend
	// OnSettle, when non-nil, receives every settlement as it happens, on
	// the goroutine that settled it. It must not call back into the
	// controller.
	OnSettle func(Settlement)
	// SnapshotW, when non-nil, receives the final obs snapshot as JSON,
	// written exactly once when Run returns.
	SnapshotW io.Writer
	// Journal, when non-nil, write-ahead journals every accepted
	// state-changing link event, computed delta, southbound ack, and
	// dead-letter before it takes downstream effect, making the controller
	// crash-recoverable (see Recover). The first journal failure latches:
	// Run drains and returns it, because a controller that cannot persist
	// its frontier must not keep absorbing events it would forget.
	Journal *journal.Journal
	// SnapshotEvery compacts the journal into a full-state snapshot after
	// this many appended records (default 512). Only meaningful with
	// Journal set.
	SnapshotEvery int

	// now is the test seam for time.
	now func() time.Time
}

func (cfg Config) withDefaults() Config {
	if cfg.K == 0 {
		cfg.K = 1
	}
	if cfg.InboxCapacity <= 0 {
		cfg.InboxCapacity = 256
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 256
	}
	if cfg.RepairTimeout <= 0 {
		cfg.RepairTimeout = 5 * time.Second
	}
	if cfg.PushTimeout <= 0 {
		cfg.PushTimeout = 2 * time.Second
	}
	if cfg.PushAttempts <= 0 {
		cfg.PushAttempts = 4
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 10 * time.Millisecond
	}
	if cfg.RetryCap <= 0 {
		cfg.RetryCap = 500 * time.Millisecond
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 2 * time.Second
	}
	if cfg.WarmStartMaxDiff <= 0 {
		cfg.WarmStartMaxDiff = 4
	}
	if cfg.Strategy == 0 {
		cfg.Strategy = resilience.Combined
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 512
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return cfg
}

// trackedEvent is an applied event awaiting settlement.
type trackedEvent struct {
	ev    Event
	epoch uint64
}

// epochAcct tracks one repair pass's outstanding pushes and the worst
// outcome seen across its repairs and deliveries. A pass at epoch E covers
// every event up to E (events applied between passes are delivered by the
// next pass), so draining the acct settles them all.
type epochAcct struct {
	epoch       uint64
	outstanding int
	worst       Outcome
	err         error
}

func (a *epochAcct) merge(o Outcome, err error) {
	if o > a.worst {
		a.worst = o
		a.err = err
	}
}

// repairResult is one destination's repair attempt.
type repairResult struct {
	table    *routing.Routing
	degraded bool
	warm     bool
	err      error
}

// Controller is the churn-driven repair controller. Construct with New,
// feed with Offer, drive with Run.
type Controller struct {
	cfg     Config
	dests   []string
	inbox   *inbox
	breaker *server.Breaker
	push    *pusher

	mu         sync.Mutex
	epoch      uint64
	down       map[string]network.EdgeID
	dirty      map[string]bool
	lastPushed map[string]map[string]TableEntry
	pending    []trackedEvent
	accts      map[uint64]*epochAcct
	floor      uint64
	draining   bool

	// Journal-side state (all under mu; populated only with cfg.Journal
	// set). acked mirrors what the sink has acknowledged per destination —
	// the recovery baseline — distinct from lastPushed, which is
	// optimistic about in-flight deltas.
	acked         map[string]map[string]TableEntry
	ackedEpoch    map[string]uint64
	ackedDegraded map[string]bool
	walFatal      error
	walAppends    int

	flushOnce sync.Once
}

// New validates cfg and assembles a controller. Run must be called for
// events to make progress.
func New(cfg Config) (*Controller, error) {
	if cfg.Base == nil {
		return nil, errors.New("controller: Config.Base is required")
	}
	if cfg.Sink == nil {
		return nil, errors.New("controller: Config.Sink is required")
	}
	cfg = cfg.withDefaults()
	dests := cfg.Dests
	if len(dests) == 0 {
		for _, v := range cfg.Base.Nodes() {
			dests = append(dests, cfg.Base.NodeName(v))
		}
	}
	for _, d := range dests {
		if cfg.Base.NodeByName(d) < 0 {
			return nil, fmt.Errorf("controller: destination %q not in base topology", d)
		}
	}
	c := &Controller{
		cfg:        cfg,
		dests:      dests,
		inbox:      newInbox(cfg.InboxCapacity),
		breaker:    server.NewBreaker(cfg.Breaker),
		down:       make(map[string]network.EdgeID),
		dirty:      make(map[string]bool),
		lastPushed: make(map[string]map[string]TableEntry),
		accts:      make(map[uint64]*epochAcct),

		acked:         make(map[string]map[string]TableEntry),
		ackedEpoch:    make(map[string]uint64),
		ackedDegraded: make(map[string]bool),
	}
	c.push = newPusher(cfg.Sink, cfg.QueueCapacity, c.pushResolved)
	c.push.backoff = retry.New(cfg.RetryBase, cfg.RetryCap, cfg.RetrySeed)
	c.push.timeout = cfg.PushTimeout
	c.push.attempts = cfg.PushAttempts
	c.push.hook = cfg.Hook
	c.push.obs = cfg.Obs
	return c, nil
}

func (c *Controller) obs() *obs.Observer { return c.cfg.Obs }

func (c *Controller) hookAt(s resilience.Stage) error {
	if c.cfg.Hook == nil {
		return nil
	}
	return c.cfg.Hook.At(s)
}

// Offer submits one link event. It never blocks: a full inbox rejects with
// ErrOverflow (back off and re-offer), a shut-down controller with
// ErrClosed. A nil error means the event will settle — watch OnSettle.
func (c *Controller) Offer(ev Event) error {
	if ev.At.IsZero() {
		ev.At = c.cfg.now()
	}
	if err := c.hookAt(resilience.StageCtlInbox); err != nil {
		c.obs().Counter(obs.CtlOverflows).Inc()
		return err
	}
	coalesced, err := c.inbox.offer(ev)
	if err != nil {
		c.obs().Counter(obs.CtlOverflows).Inc()
		return err
	}
	c.obs().Counter(obs.CtlEvents).Inc()
	if coalesced {
		c.obs().Counter(obs.CtlCoalesced).Inc()
	}
	c.obs().Gauge(obs.CtlInboxDepth).Set(int64(c.inbox.depth()))
	return nil
}

// Run drives the reconcile loop until ctx is cancelled, then drains:
// in-flight repairs and their pushes complete under DrainGrace, queued
// events settle as retryable rejections, and the obs snapshot (if
// configured) flushes exactly once. Run returns ctx's cause.
func (c *Controller) Run(ctx context.Context) error {
	defer c.flushSnapshot()
	pushCtx, pushCancel := context.WithCancel(context.Background())
	defer pushCancel()
	pusherExit := make(chan struct{})
	go func() {
		defer close(pusherExit)
		c.push.run(pushCtx)
	}()
	for {
		select {
		case <-ctx.Done():
			return c.shutdown(ctx, pushCancel, pusherExit)
		case <-c.inbox.wake:
			c.reconcile(ctx)
			if err := c.journalErr(); err != nil {
				_ = c.shutdown(ctx, pushCancel, pusherExit)
				return fmt.Errorf("controller: journal failed: %w", err)
			}
		}
	}
}

// reconcile processes inbox batches until the inbox is empty and every
// destination is clean, checking ctx between passes so shutdown latency is
// bounded by a single pass.
func (c *Controller) reconcile(ctx context.Context) {
	for ctx.Err() == nil && c.journalErr() == nil {
		batch := c.inbox.drain()
		c.obs().Gauge(obs.CtlInboxDepth).Set(0)
		if len(batch) == 0 && !c.hasDirty() {
			return
		}
		settlements, _ := c.applyBatch(batch)
		c.fire(settlements)
		if c.journalErr() != nil {
			// The applied events never became durable; stop before any
			// repair is computed against state a restart would forget.
			return
		}
		for ctx.Err() == nil {
			if c.repairPass(ctx) {
				break
			}
			// Stale pass: a superseding event landed mid-repair; the
			// discarded tables are recomputed against the new epoch.
		}
		c.walMaybeSnapshot()
	}
}

// applyBatch folds drained events into the down-link set. State-changing
// events bump the epoch and dirty every destination; no-ops and unknown
// links settle immediately. The second return tells whether the epoch
// advanced (the staleness signal for in-flight repairs).
func (c *Controller) applyBatch(batch []pendingEvent) ([]Settlement, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	before := c.epoch
	var immediate []Settlement
	for _, slot := range batch {
		events := append(slot.absorbed, slot.ev)
		e, ok := c.cfg.Base.EdgeByKey(slot.ev.Link)
		if !ok {
			err := fmt.Errorf("%w: %q", ErrUnknownLink, slot.ev.Link)
			for _, ev := range events {
				immediate = append(immediate, Settlement{
					Event: ev, Epoch: c.epoch, Outcome: OutcomeError,
					Err: err, Latency: now.Sub(ev.At),
				})
			}
			continue
		}
		_, isDown := c.down[slot.ev.Link]
		changed := slot.ev.Up == isDown
		if !changed {
			c.obs().Counter(obs.CtlNoops).Add(int64(len(events)))
			for _, ev := range events {
				immediate = append(immediate, Settlement{
					Event: ev, Epoch: c.epoch, Outcome: OutcomePushed,
					Latency: now.Sub(ev.At),
				})
			}
			continue
		}
		if slot.ev.Up {
			delete(c.down, slot.ev.Link)
		} else {
			c.down[slot.ev.Link] = e
		}
		c.epoch++
		c.obs().Gauge(obs.CtlEpoch).Set(int64(c.epoch))
		c.walAppendLocked(walRecord{T: "event", Link: slot.ev.Link, Up: slot.ev.Up, Epoch: c.epoch})
		for _, ev := range events {
			c.pending = append(c.pending, trackedEvent{ev: ev, epoch: c.epoch})
		}
		for _, d := range c.dests {
			c.dirty[d] = true
		}
	}
	// One fsync covers the whole batch; reconcile stops before repairing
	// if it failed, so nothing downstream ever builds on a lost event.
	c.walSyncLocked()
	return immediate, c.epoch != before
}

// passState snapshots what a repair pass needs: the epoch, the surviving
// edge set, and the dirty destinations, in deterministic order.
func (c *Controller) passState() (epoch uint64, drops []network.EdgeID, dests []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.down {
		drops = append(drops, e)
	}
	sort.Slice(drops, func(i, j int) bool { return drops[i] < drops[j] })
	for d := range c.dirty {
		dests = append(dests, d)
	}
	sort.Strings(dests)
	return c.epoch, drops, dests
}

// repairPass repairs every dirty destination against the current epoch's
// topology. It returns false when a superseding event arrived mid-pass: the
// repaired tables are stale and discarded — never pushed — and the caller
// re-enters against the new epoch.
func (c *Controller) repairPass(ctx context.Context) bool {
	epoch, drops, dests := c.passState()
	if len(dests) == 0 {
		return true
	}
	topo, err := network.WithoutEdges(c.cfg.Base, drops)
	results := make(map[string]repairResult, len(dests))
	if err != nil {
		// Unbuildable topology (cannot happen with keys resolved on Base,
		// but a typed settlement beats a panic): every dest errors.
		for _, dest := range dests {
			results[dest] = repairResult{err: err}
		}
	} else {
		for _, dest := range dests {
			res := c.repairDest(ctx, topo, dest)
			if herr := c.hookAt(resilience.StageCtlEpoch); herr != nil {
				res = repairResult{err: herr}
			}
			if c.absorb() {
				c.obs().Counter(obs.CtlStale).Inc()
				return false
			}
			results[dest] = res
			if ctx.Err() != nil {
				break // drain: unprocessed dests stay dirty for rejection
			}
		}
	}
	jobs, settlements := c.finishPass(epoch, results)
	for _, j := range jobs {
		c.push.enqueue(j)
	}
	c.fire(settlements)
	return true
}

// absorb drains events that arrived mid-pass and reports whether they
// changed the topology — the epoch-race detection point (StageCtlEpoch's
// Call faults inject a superseding event just before it).
func (c *Controller) absorb() bool {
	batch := c.inbox.drain()
	if len(batch) == 0 {
		return false
	}
	settlements, changed := c.applyBatch(batch)
	c.fire(settlements)
	return changed
}

// finishPass turns a pass's repair results into queued deltas and
// settlement accounting for the pass epoch.
func (c *Controller) finishPass(epoch uint64, results map[string]repairResult) ([]pushJob, []Settlement) {
	dests := make([]string, 0, len(results))
	for d := range results {
		dests = append(dests, d)
	}
	sort.Strings(dests)
	c.mu.Lock()
	defer c.mu.Unlock()
	acct := c.acctLocked(epoch)
	var jobs []pushJob
	for _, dest := range dests {
		res := results[dest]
		delete(c.dirty, dest)
		if res.err != nil {
			c.obs().Counter(obs.CtlErrors).Inc()
			acct.merge(OutcomeError, res.err)
			continue
		}
		delta, next := buildDelta(dest, epoch, res.degraded, c.lastPushed[dest], res.table)
		if delta.Empty() {
			if res.degraded {
				acct.merge(OutcomeDegraded, nil)
			}
			continue
		}
		c.lastPushed[dest] = next
		acct.outstanding++
		c.walAppendLocked(walRecord{T: "delta", Delta: &delta})
		jobs = append(jobs, pushJob{delta: delta})
		c.obs().Counter(obs.CtlApplied).Inc()
	}
	// Deltas must be durable before the sink can see them — the invariant
	// that keeps recovered epochs ≥ sink epochs. On journal failure the
	// jobs are withheld and their events settle as errors; the run loop
	// then surfaces the latched failure and drains.
	c.walSyncLocked()
	if c.walFatal != nil {
		acct.merge(OutcomeError, fmt.Errorf("controller: journal failed: %w", c.walFatal))
		for range jobs {
			acct.outstanding--
		}
		jobs = nil
	}
	return jobs, c.settleLocked()
}

func (c *Controller) acctLocked(epoch uint64) *epochAcct {
	a, ok := c.accts[epoch]
	if !ok {
		a = &epochAcct{epoch: epoch, worst: OutcomePushed}
		c.accts[epoch] = a
	}
	return a
}

// pushResolved is the pusher's result callback: push outcomes merge into
// their epoch's accounting, and a dead-letter re-baselines the destination
// (next delta becomes a full snapshot) and re-dirties it for resync.
func (c *Controller) pushResolved(j pushJob, err error) {
	d := j.delta
	settlements, resync := c.resolveLocked(d, err)
	c.fire(settlements)
	if resync {
		c.inbox.signal()
	}
}

func (c *Controller) resolveLocked(d Delta, err error) ([]Settlement, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a := c.accts[d.Epoch]
	if a != nil {
		a.outstanding--
	}
	resync := false
	switch {
	case errors.Is(err, errDuplicatePush):
		// Below the recovered ack watermark: the sink already holds this
		// state, so the skip settles as delivered without touching the
		// acked baseline (nothing new was acknowledged).
	case err != nil:
		if a != nil {
			a.merge(OutcomeError, err)
		}
		c.deadLocked(d, err, deadAttempts(err))
		delete(c.lastPushed, d.Dest)
		if !c.draining {
			c.dirty[d.Dest] = true
			resync = true
		}
	default:
		c.ackLocked(d)
		if d.Degraded {
			if a != nil {
				a.merge(OutcomeDegraded, nil)
			}
		}
	}
	return c.settleLocked(), resync
}

// deadAttempts extracts the attempt count from a dead-letter error for the
// journal record; non-dead-letter failures report zero.
func deadAttempts(err error) int {
	var dl *DeadLetterError
	if errors.As(err, &dl) {
		return dl.Attempts
	}
	return 0
}

// settleLocked advances the settlement floor: pass accounts drain in epoch
// order (the pusher is FIFO), and each drained account settles every still-
// pending event up to its pass epoch with the account's worst outcome — the
// pass that actually delivered those events' state.
func (c *Controller) settleLocked() []Settlement {
	now := c.cfg.now()
	var out []Settlement
	for next := c.lowestAcct(); next != nil && next.outstanding == 0; next = c.lowestAcct() {
		delete(c.accts, next.epoch)
		keep := c.pending[:0]
		for _, te := range c.pending {
			if te.epoch > next.epoch {
				keep = append(keep, te)
				continue
			}
			out = append(out, Settlement{
				Event: te.ev, Epoch: next.epoch, Outcome: next.worst, Err: next.err,
				Latency: now.Sub(te.ev.At),
			})
		}
		c.pending = keep
		if next.epoch > c.floor {
			c.floor = next.epoch
		}
	}
	return out
}

// lowestAcct returns the open pass account with the lowest epoch, nil when
// none remain.
func (c *Controller) lowestAcct() *epochAcct {
	var next *epochAcct
	for _, a := range c.accts {
		if next == nil || a.epoch < next.epoch {
			next = a
		}
	}
	return next
}

// fire delivers settlements: the latency histogram observes each one, and
// the OnSettle callback (if any) runs outside the controller's lock.
func (c *Controller) fire(ss []Settlement) {
	if len(ss) == 0 {
		return
	}
	h := c.obs().Histogram(obs.CtlEventLatency)
	for _, s := range ss {
		h.Observe(s.Latency)
		if c.cfg.OnSettle != nil {
			c.cfg.OnSettle(s)
		}
	}
}

func (c *Controller) hasDirty() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.dirty) > 0
}

// shutdown drains the controller: the inbox closes (future offers reject),
// queued deltas flush under DrainGrace (then dead-letter), and everything
// still unsettled rejects retryably.
func (c *Controller) shutdown(ctx context.Context, pushCancel context.CancelFunc, pusherExit chan struct{}) error {
	c.inbox.close()
	c.setDraining()
	close(c.push.queue)
	grace := time.NewTimer(c.cfg.DrainGrace)
	defer grace.Stop()
	select {
	case <-pusherExit:
	case <-grace.C:
		pushCancel()
		<-pusherExit
	}
	c.fire(c.rejectRemaining())
	return context.Cause(ctx)
}

func (c *Controller) setDraining() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.draining = true
}

// rejectRemaining settles every event the drain could not serve — queued
// inbox slots and pending events whose epochs never completed — with the
// retryable ErrShuttingDown.
func (c *Controller) rejectRemaining() []Settlement {
	leftovers := c.inbox.drain()
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	var out []Settlement
	for _, te := range c.pending {
		out = append(out, Settlement{
			Event: te.ev, Epoch: te.epoch, Outcome: OutcomeError,
			Err: ErrShuttingDown, Latency: now.Sub(te.ev.At),
		})
	}
	c.pending = nil
	for _, slot := range leftovers {
		for _, ev := range append(slot.absorbed, slot.ev) {
			out = append(out, Settlement{
				Event: ev, Epoch: c.epoch, Outcome: OutcomeError,
				Err: ErrShuttingDown, Latency: now.Sub(ev.At),
			})
		}
	}
	return out
}

// flushSnapshot writes the final obs snapshot exactly once, however Run
// exits.
func (c *Controller) flushSnapshot() {
	c.flushOnce.Do(func() {
		if c.cfg.Obs == nil || c.cfg.SnapshotW == nil {
			return
		}
		_ = c.cfg.Obs.Snapshot().WriteJSON(c.cfg.SnapshotW)
	})
}

// Epoch returns the current topology epoch.
func (c *Controller) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// DeadLetters returns the pusher's retained dead-letter queue.
func (c *Controller) DeadLetters() []DeadLetter { return c.push.deadLetters() }

// repairDest computes one destination's table against topo: warm-start from
// the cache when a near seed exists, cold synthesis otherwise, and a
// heuristic-only degraded table when the breaker is open or synthesis fails
// transiently. A destination that not even the heuristic can serve is the
// error arm of the trichotomy.
func (c *Controller) repairDest(ctx context.Context, topo *network.Network, dest string) repairResult {
	o := c.obs()
	o.Counter(obs.CtlRepairs).Inc()
	if err := c.hookAt(resilience.StageCtlRepair); err != nil {
		return repairResult{err: err}
	}
	destID := topo.NodeByName(dest)
	if destID < 0 {
		return repairResult{err: fmt.Errorf("controller: destination %q not in topology", dest)}
	}
	sctx, end := o.StartStage(ctx, string(resilience.StageCtlRepair))
	defer end()
	if !c.breaker.Allow(c.cfg.now()) {
		return c.degrade(sctx, topo, destID, nil)
	}
	rctx, cancel := context.WithTimeout(sctx, c.cfg.RepairTimeout)
	defer cancel()
	opts := resilience.Options{
		Strategy:      c.cfg.Strategy,
		Timeout:       c.cfg.RepairTimeout,
		Obs:           c.cfg.Obs,
		Hook:          c.cfg.Hook,
		VerifyBackend: c.cfg.VerifyBackend,
	}
	if c.cfg.Cache != nil {
		if r := c.warmOnce(rctx, topo, dest, opts); r != nil {
			c.breaker.Record(true, c.cfg.now())
			o.Counter(obs.CtlWarmRepairs).Inc()
			return repairResult{table: r, warm: true}
		}
		c.cfg.Cache.NoteWarmMiss()
	}
	r, _, err := resilience.Synthesize(rctx, topo, destID, c.cfg.K, opts)
	if err == nil {
		c.breaker.Record(true, c.cfg.now())
		c.cachePut(topo, dest, r)
		o.Counter(obs.CtlColdSynths).Inc()
		return repairResult{table: r}
	}
	if resilience.IsTransient(err) {
		c.breaker.Record(false, c.cfg.now())
	}
	if p, ok := resilience.AsPartial(err); ok {
		// A salvaged partial table beats the heuristic fallback: it is
		// complete and usually closer to resilient. Still flagged degraded.
		c.obs().Counter(obs.CtlDegraded).Inc()
		return repairResult{table: p.Routing, degraded: true}
	}
	if ctx.Err() != nil {
		return repairResult{err: err}
	}
	return c.degrade(sctx, topo, destID, err)
}

// warmOnce is one warm-start attempt; nil means fall through to cold
// synthesis.
func (c *Controller) warmOnce(ctx context.Context, topo *network.Network, dest string, opts resilience.Options) *routing.Routing {
	ent, _, ok := c.cfg.Cache.Nearest(topo, dest, c.cfg.K, c.cfg.WarmStartMaxDiff)
	if !ok {
		return nil
	}
	seed, err := cache.Adapt(ent, topo, c.cfg.K)
	if err != nil {
		return nil
	}
	r, _, err := resilience.WarmStart(ctx, seed, c.cfg.K, opts)
	if err != nil {
		return nil
	}
	c.cfg.Cache.NoteWarmHit()
	c.cachePut(topo, dest, r)
	return r
}

func (c *Controller) cachePut(topo *network.Network, dest string, r *routing.Routing) {
	if c.cfg.Cache == nil {
		return
	}
	c.cfg.Cache.Put(cache.Key{
		Topo:     topo.Fingerprint(),
		Dest:     dest,
		K:        c.cfg.K,
		Strategy: c.cfg.Strategy.String(),
	}, &cache.Entry{Net: topo, Routing: r, Resilient: true})
}

// degrade serves the breaker-open (or synthesis-failed) path: a heuristic
// skipping table, generated under its own small budget, pushed flagged.
func (c *Controller) degrade(ctx context.Context, topo *network.Network, destID network.NodeID, cause error) repairResult {
	hctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	r, err := heuristic.Generate(hctx, topo, destID)
	if err != nil {
		if cause != nil {
			return repairResult{err: errors.Join(cause, err)}
		}
		return repairResult{err: err}
	}
	c.obs().Counter(obs.CtlDegraded).Inc()
	return repairResult{table: r, degraded: true}
}
