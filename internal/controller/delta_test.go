package controller

import (
	"context"
	"testing"

	"syrep/internal/heuristic"
	"syrep/internal/network"
	"syrep/internal/routing"
)

// genTable builds a heuristic routing for dest on net and returns it with
// its wire-form encoding.
func genTable(t *testing.T, net *network.Network, dest string) (*routing.Routing, map[string]TableEntry) {
	t.Helper()
	id := net.NodeByName(dest)
	if id < 0 {
		t.Fatalf("no node %s", dest)
	}
	r, err := heuristic.Generate(context.Background(), net, id)
	if err != nil {
		t.Fatalf("heuristic: %v", err)
	}
	return r, encodeTable(r)
}

// TestEncodeTableCanonical: wire-form entries reference canonical edge keys
// and node names only, and entries survive a topology rebuild that
// renumbers the dense ids.
func TestEncodeTableCanonical(t *testing.T) {
	base, err := SimNetwork(6)
	if err != nil {
		t.Fatal(err)
	}
	_, table := genTable(t, base, "s0")
	if len(table) == 0 {
		t.Fatal("empty encoded table")
	}
	for k, e := range table {
		if e.entryKey() != k {
			t.Errorf("map key %q != entryKey %q", k, e.entryKey())
		}
		if _, ok := base.EdgeByKey(e.In); !ok && base.NodeByName(e.In) < 0 {
			t.Errorf("entry %q: In %q is neither an edge key nor a loopback node name", k, e.In)
		}
		if base.NodeByName(e.At) < 0 {
			t.Errorf("entry %q: At %q is not a node name", k, e.At)
		}
		for _, p := range e.Prio {
			if _, ok := base.EdgeByKey(p); !ok {
				t.Errorf("entry %q: Prio element %q is not an edge key", k, p)
			}
		}
	}
}

// TestDiffTables: identical tables diff empty, a changed entry lands in Set,
// a removed entry lands in Del, and nil prev yields a snapshot.
func TestDiffTables(t *testing.T) {
	base, err := SimNetwork(6)
	if err != nil {
		t.Fatal(err)
	}
	_, table := genTable(t, base, "s0")

	set, del, snap := diffTables(table, table)
	if len(set) != 0 || len(del) != 0 || snap {
		t.Errorf("self-diff: set=%d del=%d snap=%v, want all empty", len(set), len(del), snap)
	}

	set, del, snap = diffTables(nil, table)
	if snap != true || len(set) != len(table) || len(del) != 0 {
		t.Errorf("nil prev: snap=%v set=%d del=%d, want snapshot of %d", snap, len(set), len(del), len(table))
	}

	// Mutate one entry, remove another.
	next := make(map[string]TableEntry, len(table))
	for k, v := range table {
		next[k] = v
	}
	var mutKey, delKey string
	for k := range next {
		if mutKey == "" {
			mutKey = k
			continue
		}
		delKey = k
		break
	}
	m := next[mutKey]
	m.Prio = append([]string{"bogus-edge"}, m.Prio...)
	next[mutKey] = m
	delete(next, delKey)

	set, del, snap = diffTables(table, next)
	if snap {
		t.Error("patch diff marked snapshot")
	}
	if len(set) != 1 || set[0].entryKey() != mutKey {
		t.Errorf("set = %v, want exactly the mutated entry %q", set, mutKey)
	}
	if len(del) != 1 || del[0] != delKey {
		t.Errorf("del = %v, want exactly %q", del, delKey)
	}
}

// TestApplyDeltaRoundTrip: applying the diff of t1→t2 onto t1 reconstructs
// t2 exactly, including across a topology rebuild (WithoutEdges renumbers
// edges, but canonical keys make the tables comparable).
func TestApplyDeltaRoundTrip(t *testing.T) {
	base, err := SimNetwork(6)
	if err != nil {
		t.Fatal(err)
	}
	_, t1 := genTable(t, base, "s0")

	// Rebuild the topology without one edge: different dense ids, different
	// heuristic output.
	drop := []network.EdgeID{0}
	reduced, err := network.WithoutEdges(base, drop)
	if err != nil {
		t.Fatal(err)
	}
	r2, t2 := genTable(t, reduced, "s0")

	d, next := buildDelta("s0", 7, false, t1, r2)
	if d.Dest != "s0" || d.Epoch != 7 || d.Snapshot {
		t.Errorf("delta header = %+v, want dest s0 epoch 7 patch", d)
	}
	if len(next) != len(t2) {
		t.Errorf("buildDelta next has %d entries, encode has %d", len(next), len(t2))
	}

	got := applyDelta(copyTable(t1), d)
	assertTablesEqual(t, got, t2)

	// Snapshot path: applying onto garbage must still reconstruct exactly.
	snap, _ := buildDelta("s0", 8, false, nil, r2)
	if !snap.Snapshot || len(snap.Del) != 0 {
		t.Errorf("nil-prev delta: snapshot=%v del=%d, want snapshot with no dels", snap.Snapshot, len(snap.Del))
	}
	garbage := map[string]TableEntry{"x@y": {In: "x", At: "y"}}
	got = applyDelta(garbage, snap)
	assertTablesEqual(t, got, t2)
}

// TestEmptyDelta: a repair reproducing the previous table yields an empty,
// push-skippable delta.
func TestEmptyDelta(t *testing.T) {
	base, err := SimNetwork(6)
	if err != nil {
		t.Fatal(err)
	}
	r, t1 := genTable(t, base, "s0")
	d, _ := buildDelta("s0", 3, false, t1, r)
	if !d.Empty() {
		t.Errorf("delta against identical table not empty: %+v", d)
	}
	if (Delta{Snapshot: true}).Empty() {
		t.Error("a snapshot delta must never count as empty")
	}
}

func copyTable(t map[string]TableEntry) map[string]TableEntry {
	out := make(map[string]TableEntry, len(t))
	for k, v := range t {
		out[k] = v
	}
	return out
}

func assertTablesEqual(t *testing.T, got, want map[string]TableEntry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("table size %d, want %d", len(got), len(want))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok || !g.equal(w) {
			t.Fatalf("table diverges at %q: got %+v want %+v", k, g, w)
		}
	}
}
