package controller

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Event is one link state change on the controller's base topology. Links
// are named by canonical edge key (network.EdgeKey), which survives node
// and edge renumbering across topology rebuilds.
type Event struct {
	// Link is the canonical edge key of the affected link.
	Link string
	// Up tells the link's new state: true = restored, false = failed.
	Up bool
	// At is the event's arrival time, stamped by Offer when zero. Event
	// latency (arrival to settlement) is measured from it.
	At time.Time
}

func (e Event) String() string {
	state := "down"
	if e.Up {
		state = "up"
	}
	return fmt.Sprintf("%s %s", state, e.Link)
}

// ErrOverflow is the inbox's backpressure signal: the bounded inbox is full
// of distinct pending links and the event was rejected. It is retryable —
// the caller should back off and re-offer.
var ErrOverflow = errors.New("controller: event inbox full")

// ErrClosed rejects events offered after shutdown began. It is retryable
// against a replacement controller, never against this one.
var ErrClosed = errors.New("controller: shut down")

// pendingEvent is an inbox slot: the latest event for one link plus every
// earlier event it coalesced away (a flap collapses to its final state, but
// the absorbed events still owe their arrival-to-settlement accounting).
type pendingEvent struct {
	ev       Event
	absorbed []Event
}

// inbox is the bounded, coalescing event queue between Offer and the
// reconcile loop. Per-link coalescing keeps at most one pending event per
// link — a down/up/down flap occupies one slot and collapses to the final
// state — so capacity bounds the number of distinct churning links, not the
// event rate.
type inbox struct {
	mu       sync.Mutex
	capacity int
	byLink   map[string]int // link -> index into order
	order    []pendingEvent // FIFO by first arrival of each link
	closed   bool

	// wake signals the reconcile loop that events are pending. 1-buffered;
	// sends are select-wrapped so Offer never blocks on a slow consumer.
	wake chan struct{}
}

func newInbox(capacity int) *inbox {
	if capacity <= 0 {
		capacity = 256
	}
	return &inbox{
		capacity: capacity,
		byLink:   make(map[string]int),
		wake:     make(chan struct{}, 1),
	}
}

// offer enqueues or coalesces one event. The returned bool tells whether the
// event coalesced into an existing slot. Rejections (ErrOverflow, ErrClosed)
// leave the inbox unchanged.
func (in *inbox) offer(ev Event) (coalesced bool, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return false, ErrClosed
	}
	if i, ok := in.byLink[ev.Link]; ok {
		slot := &in.order[i]
		slot.absorbed = append(slot.absorbed, slot.ev)
		slot.ev = ev
		in.signal()
		return true, nil
	}
	if len(in.order) >= in.capacity {
		return false, ErrOverflow
	}
	in.byLink[ev.Link] = len(in.order)
	in.order = append(in.order, pendingEvent{ev: ev})
	in.signal()
	return false, nil
}

// signal nudges the wake channel. The channel is 1-buffered and the send
// select-wrapped, so signalling — even under the inbox mutex — cannot
// block: a pending wake already covers the nudge. The controller also calls
// it directly to schedule a resync pass after a dead-letter.
func (in *inbox) signal() {
	select {
	case in.wake <- struct{}{}:
	default:
	}
}

// drain takes every pending event, oldest link first, leaving the inbox
// empty. The reconcile loop calls it once per pass and again after each
// repair to absorb superseding events (the epoch-race check).
func (in *inbox) drain() []pendingEvent {
	in.mu.Lock()
	defer in.mu.Unlock()
	if len(in.order) == 0 {
		return nil
	}
	out := in.order
	in.order = nil
	in.byLink = make(map[string]int)
	return out
}

// depth reports the number of pending (distinct-link) events.
func (in *inbox) depth() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.order)
}

// close rejects all future offers; pending events remain for the shutdown
// drain to settle.
func (in *inbox) close() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.closed = true
}
