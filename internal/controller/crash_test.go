package controller

// The kill-matrix crash harness: a seeded churn script runs against a
// controller whose journal lives on crashfs, the process is killed at every
// journaled filesystem operation in turn, the controller is recovered, and
// the finished run is compared against a no-crash oracle. The sink — the
// network's switches — survives every crash, so the comparison proves the
// recovered controller resumes idempotently: no acked delta is ever
// re-pushed (the sink rejects per-destination epoch regressions), poisoned
// destinations resync by snapshot, and the final tables converge to exactly
// what an uninterrupted controller would have pushed.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"syrep/internal/journal"
	"syrep/internal/journal/crashfs"
	"syrep/internal/network"
)

// churnStep is one scripted link transition.
type churnStep struct {
	link string
	up   bool
}

// churnScript builds the deterministic workload: nine transitions over five
// links, never more than two down at once, ending with one link still down
// so the final table is a genuine repair, not the base topology.
func churnScript(links []string) []churnStep {
	l := links
	return []churnStep{
		{l[0], false},
		{l[1], false},
		{l[0], true},
		{l[2], false},
		{l[1], true},
		{l[3], false},
		{l[2], true},
		{l[4], false},
		{l[3], true},
	}
}

// oracleRun drives the script on a journal-free controller and returns its
// final sink table and down set — the ground truth every crash run must
// reproduce.
func oracleRun(t *testing.T, base *network.Network, script []churnStep) (map[string]TableEntry, map[string]bool) {
	t.Helper()
	h := startCtl(t, func(cfg *Config) { cfg.Obs = nil })
	for _, st := range script {
		if err := h.ctl.Offer(Event{Link: st.link, Up: st.up}); err != nil {
			t.Fatal(err)
		}
		h.wait(t, 1)
	}
	waitIdle(t, h.ctl)
	down := make(map[string]bool)
	h.ctl.mu.Lock()
	for link := range h.ctl.down {
		down[link] = true
	}
	h.ctl.mu.Unlock()
	table := h.sink.Table("s0")
	h.stop()
	return table, down
}

// crashRun drives one scripted run over a crashfs-backed journal, surviving
// every planned kill by recovering into a fresh controller life.
type crashRun struct {
	t      *testing.T
	fs     *crashfs.FS
	sink   *MemSink
	base   *network.Network
	script []churnStep
	// kills[i] arms fs.KillAt before boot i (-1 = no kill). Ops are counted
	// from the Reopen that preceded the boot, so a kill can land inside
	// recovery itself — the double-crash case.
	kills []int

	intended map[string]bool
	next     int
	lives    int
}

// life is one controller incarnation between crashes.
type life struct {
	ctl    *Controller
	j      *journal.Journal
	settle chan Settlement
	cancel context.CancelFunc
	exit   chan error
	exited bool
}

func (lf *life) stop(t *testing.T) {
	lf.cancel()
	if lf.exited {
		return
	}
	select {
	case <-lf.exit:
		lf.exited = true
	case <-time.After(30 * time.Second):
		t.Fatal("controller life did not exit")
	}
}

func newCrashRun(t *testing.T, seed int64, kills []int) *crashRun {
	base, err := SimNetwork(6)
	if err != nil {
		t.Fatal(err)
	}
	links := base.EdgeKeys()
	if len(links) < 5 {
		t.Fatalf("SimNetwork(6) has %d links, need 5", len(links))
	}
	return &crashRun{
		t:        t,
		fs:       crashfs.New(seed),
		sink:     NewMemSink(),
		base:     base,
		script:   churnScript(links),
		kills:    kills,
		intended: make(map[string]bool),
	}
}

// boot opens the journal and builds a controller — New on the first life,
// Recover afterwards. A nil error means the controller is running.
func (cr *crashRun) boot(first bool) (*life, []string, error) {
	j, err := journal.Open(cr.fs, journal.Options{})
	if err != nil {
		return nil, nil, err
	}
	lf := &life{j: j, settle: make(chan Settlement, 4096)}
	cfg := Config{
		Base:          cr.base,
		Dests:         []string{"s0"},
		K:             1,
		Sink:          cr.sink,
		RepairTimeout: 2 * time.Second,
		PushAttempts:  2,
		RetryBase:     time.Millisecond,
		RetryCap:      2 * time.Millisecond,
		DrainGrace:    100 * time.Millisecond,
		Journal:       j,
		OnSettle:      func(s Settlement) { lf.settle <- s },
	}
	var recovered []string
	if first {
		lf.ctl, err = New(cfg)
	} else {
		var info RecoveryInfo
		lf.ctl, info, err = Recover(cfg)
		recovered = info.Down
	}
	if err != nil {
		return nil, nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	lf.cancel = cancel
	lf.exit = make(chan error, 1)
	go func() { lf.exit <- lf.ctl.Run(ctx) }()
	return lf, recovered, nil
}

// offerAndSettle submits one event and waits for its settlement. False
// means the life died first (the event may or may not have applied — the
// next life's corrective sync reconciles either way).
func (cr *crashRun) offerAndSettle(lf *life, st churnStep) bool {
	if err := lf.ctl.Offer(Event{Link: st.link, Up: st.up}); err != nil {
		return false
	}
	for {
		select {
		case s := <-lf.settle:
			if s.Event.Link == st.link {
				return true
			}
		case <-lf.exit:
			lf.exited = true
			return false
		case <-time.After(30 * time.Second):
			cr.t.Fatal("settlement timed out")
		}
	}
}

// settleLife waits for the controller to go idle after the script, then
// stops it cleanly. False means it crashed while settling.
func (cr *crashRun) settleLife(lf *life) bool {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case <-lf.exit:
			lf.exited = true
			return false
		default:
		}
		lf.ctl.mu.Lock()
		idle := len(lf.ctl.dirty) == 0 && len(lf.ctl.accts) == 0 && lf.ctl.walFatal == nil
		lf.ctl.mu.Unlock()
		if idle {
			lf.stop(cr.t)
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	cr.t.Fatal("controller never settled")
	return false
}

// drive runs the whole script to completion across as many lives as the
// kill plan forces, returning the final life's controller (stopped).
func (cr *crashRun) drive() *Controller {
	boots := 0
	for {
		cr.lives++
		if cr.lives > 60 {
			cr.t.Fatal("crash run did not converge")
		}
		if boots < len(cr.kills) && cr.kills[boots] >= 0 {
			cr.fs.KillAt(cr.kills[boots])
		}
		lf, recovered, err := cr.boot(boots == 0)
		boots++
		if err != nil {
			if cr.fs.Killed() {
				cr.fs.Reopen()
				continue
			}
			cr.t.Fatalf("boot %d failed without a kill: %v", boots, err)
		}
		if cr.runLife(lf, recovered) {
			return lf.ctl
		}
		// The life crashed: wait for Run to exit, then simulate the restart.
		if !lf.exited {
			select {
			case <-lf.exit:
				lf.exited = true
			case <-time.After(30 * time.Second):
				cr.t.Fatal("crashed life did not exit")
			}
		}
		if !cr.fs.Killed() {
			cr.t.Fatal("life died without a crashfs kill")
		}
		cr.fs.Reopen()
	}
}

// runLife syncs the recovered state back to the intended link states, then
// continues the script. True means the script finished and the life
// settled cleanly.
func (cr *crashRun) runLife(lf *life, recovered []string) bool {
	recDown := make(map[string]bool, len(recovered))
	for _, link := range recovered {
		recDown[link] = true
	}
	// Corrective sync: the crash may have swallowed the in-flight event, or
	// persisted it after the driver gave up on its settlement. Link state is
	// external truth, so the driver re-asserts it; events that match the
	// recovered state settle as no-ops.
	for link, wantDown := range cr.intended {
		if wantDown && !recDown[link] {
			if !cr.offerAndSettle(lf, churnStep{link: link, up: false}) {
				return false
			}
		}
	}
	for link := range recDown {
		if !cr.intended[link] {
			if !cr.offerAndSettle(lf, churnStep{link: link, up: true}) {
				return false
			}
		}
	}
	for cr.next < len(cr.script) {
		st := cr.script[cr.next]
		if st.up {
			delete(cr.intended, st.link)
		} else {
			cr.intended[st.link] = true
		}
		cr.next++
		if !cr.offerAndSettle(lf, st) {
			return false
		}
	}
	return cr.settleLife(lf)
}

// verify compares the finished crash run against the oracle.
func (cr *crashRun) verify(final *Controller, oracleTable map[string]TableEntry, oracleDown map[string]bool) {
	t := cr.t
	t.Helper()
	final.mu.Lock()
	down := make(map[string]bool, len(final.down))
	for link := range final.down {
		down[link] = true
	}
	final.mu.Unlock()
	if !boolSetsEqual(down, oracleDown) {
		t.Fatalf("final down set %v, oracle %v", down, oracleDown)
	}
	if err := checkConvergence(final, cr.sink, cr.base); err != nil {
		t.Fatalf("crash run did not converge: %v", err)
	}
	if !tablesEqual(cr.sink.Table("s0"), oracleTable) {
		t.Fatalf("final sink table diverged from oracle:\n got %v\nwant %v",
			cr.sink.Table("s0"), oracleTable)
	}
	assertNoRepush(t, cr.sink)

	// The journal must replay one more time: a fresh Recover over the
	// cleanly-closed journal reconstructs the same frontier.
	j, err := journal.Open(cr.fs, journal.Options{})
	if err != nil {
		t.Fatalf("post-run journal open: %v", err)
	}
	_, info, err := Recover(Config{
		Base: cr.base, Dests: []string{"s0"}, K: 1, Sink: NewMemSink(), Journal: j,
	})
	if err != nil {
		t.Fatalf("post-run Recover: %v", err)
	}
	recDown := make(map[string]bool, len(info.Down))
	for _, link := range info.Down {
		recDown[link] = true
	}
	if !boolSetsEqual(recDown, oracleDown) {
		t.Fatalf("post-run recovered down set %v, oracle %v", info.Down, oracleDown)
	}
	if info.TornTail || len(info.Poisoned) != 0 {
		t.Fatalf("clean close recovered dirty: %+v", info)
	}
}

// assertNoRepush proves no acknowledged delta was pushed twice: per
// destination, sink-accepted epochs never decrease, and an epoch repeats
// only as an idempotent snapshot.
func assertNoRepush(t *testing.T, sink *MemSink) {
	t.Helper()
	last := make(map[string]uint64)
	lastSnap := make(map[string]bool)
	for i, d := range sink.Pushes() {
		if prev, ok := last[d.Dest]; ok {
			if d.Epoch < prev {
				t.Fatalf("push %d: epoch regression for %s: %d after %d", i, d.Dest, d.Epoch, prev)
			}
			if d.Epoch == prev && !(d.Snapshot || lastSnap[d.Dest]) {
				t.Fatalf("push %d: patch delta re-pushed at epoch %d for %s", i, d.Epoch, d.Dest)
			}
		}
		last[d.Dest] = d.Epoch
		lastSnap[d.Dest] = d.Snapshot
	}
}

func boolSetsEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func tablesEqual(a, b map[string]TableEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		if bv, ok := b[k]; !ok || !av.equal(bv) {
			return false
		}
	}
	return true
}

// probeOps measures how many crashfs operations an uninterrupted scripted
// run performs — the size of the kill matrix.
func probeOps(t *testing.T) int {
	cr := newCrashRun(t, 1, nil)
	cr.drive()
	return cr.fs.Ops()
}

// TestCrashMatrix kills the controller at every journaled filesystem
// operation (stride-sampled unless SYREP_CRASH_MATRIX=full), recovers, and
// requires the finished run to be indistinguishable from the oracle.
func TestCrashMatrix(t *testing.T) {
	base, err := SimNetwork(6)
	if err != nil {
		t.Fatal(err)
	}
	oracleTable, oracleDown := oracleRun(t, base, churnScript(base.EdgeKeys()))

	total := probeOps(t)
	if total < 20 {
		t.Fatalf("probe counted only %d ops; journaling is not reaching the fs", total)
	}
	stride := (total + 14) / 15
	seeds := []int64{1}
	if os.Getenv("SYREP_CRASH_MATRIX") == "full" {
		stride = 1
		seeds = []int64{1, 2, 3}
	}
	t.Logf("kill matrix: %d ops, stride %d, %d seeds", total, stride, len(seeds))
	type cell struct {
		Seed  int64 `json:"seed"`
		Kill  int   `json:"kill"`
		Lives int   `json:"lives"`
	}
	var cells []cell
	for _, seed := range seeds {
		for k := 0; k < total; k += stride {
			k, seed := k, seed
			t.Run(fmt.Sprintf("seed%d/kill%d", seed, k), func(t *testing.T) {
				cr := newCrashRun(t, seed, []int{k})
				final := cr.drive()
				if cr.lives < 2 && cr.fs.Ops() > k {
					t.Fatalf("kill at op %d never fired (%d lives)", k, cr.lives)
				}
				cr.verify(final, oracleTable, oracleDown)
				cells = append(cells, cell{Seed: seed, Kill: k, Lives: cr.lives})
			})
		}
	}
	// The recovery-differential artifact: one row per matrix cell that
	// matched the oracle, for the CI upload step.
	if out := os.Getenv("SYREP_CRASH_OUT"); out != "" && !t.Failed() {
		art := struct {
			Ops    int     `json:"ops"`
			Stride int     `json:"stride"`
			Seeds  []int64 `json:"seeds"`
			Cells  []cell  `json:"cells"`
		}{Ops: total, Stride: stride, Seeds: seeds, Cells: cells}
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("recovery differential written to %s (%d cells)", out, len(cells))
	}
}

// TestCrashDuringRecovery is the double-crash case: the first kill lands
// mid-script, the second is armed before the recovery boot so it fires
// inside Recover's replay, torn-tail repair, or sealing snapshot — and the
// third recovery must still reconstruct a frontier equivalent to the
// oracle.
func TestCrashDuringRecovery(t *testing.T) {
	base, err := SimNetwork(6)
	if err != nil {
		t.Fatal(err)
	}
	oracleTable, oracleDown := oracleRun(t, base, churnScript(base.EdgeKeys()))
	total := probeOps(t)

	firsts := []int{total / 3, total / 2, 2 * total / 3}
	for _, first := range firsts {
		for second := 0; second < 8; second++ {
			first, second := first, second
			t.Run(fmt.Sprintf("kill%d/then%d", first, second), func(t *testing.T) {
				cr := newCrashRun(t, 7, []int{first, second})
				final := cr.drive()
				cr.verify(final, oracleTable, oracleDown)
			})
		}
	}
}
