package controller

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"syrep/internal/cache"
	"syrep/internal/journal"
	"syrep/internal/network"
	"syrep/internal/obs"
	"syrep/internal/resilience"
	"syrep/internal/resilience/faultinject"
)

// openJournal opens (or reopens) a DirFS journal under dir.
func openJournal(t *testing.T, dir string) *journal.Journal {
	t.Helper()
	fsys, err := journal.NewDirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	j, err := journal.Open(fsys, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// startRecovered boots a harness from Recover instead of New, sharing the
// sink of the crashed run.
func startRecovered(t *testing.T, sink *MemSink, mod func(*Config)) (*harness, RecoveryInfo) {
	t.Helper()
	base, err := SimNetwork(6)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{
		t:      t,
		sink:   sink,
		obs:    nil,
		settle: make(chan Settlement, 4096),
		links:  base.EdgeKeys(),
	}
	cfg := Config{
		Base:          base,
		Dests:         []string{"s0"},
		K:             1,
		Sink:          sink,
		RepairTimeout: 2 * time.Second,
		PushAttempts:  3,
		RetryBase:     time.Millisecond,
		RetryCap:      4 * time.Millisecond,
		OnSettle:      func(s Settlement) { h.settle <- s },
	}
	if mod != nil {
		mod(&cfg)
	}
	ctl, info, err := Recover(cfg)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	h.ctl = ctl
	ctx, cancel := context.WithCancel(context.Background())
	h.cancel = cancel
	h.exit = make(chan error, 1)
	go func() { h.exit <- ctl.Run(ctx) }()
	t.Cleanup(h.stop)
	return h, info
}

// TestRecoverRoundTrip: a journaled controller settles one link-down, stops
// cleanly, and Recover reconstructs the epoch, the down set, and the
// acked baseline — then the recovered run's first reconcile pass recomputes
// the table and, finding it identical to what the sink acknowledged,
// pushes nothing.
func TestRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := openJournal(t, dir)
	h := startCtl(t, func(cfg *Config) { cfg.Journal = j })
	link := h.links[0]
	if err := h.ctl.Offer(Event{Link: link, Up: false}); err != nil {
		t.Fatal(err)
	}
	if s := h.wait(t, 1)[0]; s.Outcome != OutcomePushed {
		t.Fatalf("settlement = %+v, want pushed", s)
	}
	h.stop()
	if err := j.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}
	pushesBefore := len(h.sink.Pushes())

	j2 := openJournal(t, dir)
	h2, info := startRecovered(t, h.sink, func(cfg *Config) { cfg.Journal = j2 })
	if info.Epoch != 1 || len(info.Down) != 1 || info.Down[0] != link {
		t.Fatalf("recovered info = %+v, want epoch 1 down [%s]", info, link)
	}
	if info.TornTail || len(info.Poisoned) != 0 {
		t.Fatalf("clean shutdown recovered dirty: %+v", info)
	}
	if h2.ctl.Epoch() != 1 {
		t.Fatalf("recovered epoch = %d, want 1", h2.ctl.Epoch())
	}

	// The recovery-marked dirty pass recomputes s0 and must find the acked
	// baseline already current: no new push, no epoch regression.
	waitIdle(t, h2.ctl)
	if got := len(h2.sink.Pushes()); got != pushesBefore {
		t.Fatalf("recovered pass re-pushed: %d pushes, want %d", got, pushesBefore)
	}
	if err := checkConvergence(h2.ctl, h2.sink, h2.ctl.cfg.Base); err != nil {
		t.Fatal(err)
	}

	// The controller is live: restoring the link settles normally.
	if err := h2.ctl.Offer(Event{Link: link, Up: true}); err != nil {
		t.Fatal(err)
	}
	if s := h2.wait(t, 1)[0]; s.Outcome != OutcomePushed {
		t.Fatalf("post-recovery settlement = %+v, want pushed", s)
	}
	if h2.ctl.Epoch() != 2 {
		t.Fatalf("post-recovery epoch = %d, want 2", h2.ctl.Epoch())
	}
}

// waitIdle waits until the controller has no dirty destinations and no
// open accounting (the recovery pass completed).
func waitIdle(t *testing.T, ctl *Controller) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		ctl.mu.Lock()
		idle := len(ctl.dirty) == 0 && len(ctl.accts) == 0
		ctl.mu.Unlock()
		if idle {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("controller never went idle")
}

// TestRecoverSeedsCache: acked tables decode back into the warm cache.
func TestRecoverSeedsCache(t *testing.T) {
	dir := t.TempDir()
	j := openJournal(t, dir)
	h := startCtl(t, func(cfg *Config) { cfg.Journal = j })
	if err := h.ctl.Offer(Event{Link: h.links[0], Up: false}); err != nil {
		t.Fatal(err)
	}
	h.wait(t, 1)
	h.stop()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	cc := cache.New(cache.Config{})
	j2 := openJournal(t, dir)
	_, info, err := Recover(Config{
		Base:  mustSim(t, 6),
		Dests: []string{"s0"},
		K:     1,
		Sink:  h.sink,
		Cache: cc,

		Journal: j2,
	})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if info.CacheSeeded != 1 {
		t.Fatalf("CacheSeeded = %d, want 1", info.CacheSeeded)
	}
}

func mustSim(t *testing.T, n int) *network.Network {
	t.Helper()
	base, err := SimNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	return base
}

// TestRecoverTornTailPoisons: garbage appended to the journal's final
// segment recovers as a torn tail, poisoning every destination so the next
// push is a full snapshot.
func TestRecoverTornTailPoisons(t *testing.T) {
	dir := t.TempDir()
	j := openJournal(t, dir)
	h := startCtl(t, func(cfg *Config) { cfg.Journal = j })
	link := h.links[0]
	if err := h.ctl.Offer(Event{Link: link, Up: false}); err != nil {
		t.Fatal(err)
	}
	h.wait(t, 1)
	h.stop()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	tearTail(t, dir)

	j2 := openJournal(t, dir)
	h2, info := startRecovered(t, h.sink, func(cfg *Config) { cfg.Journal = j2 })
	if !info.TornTail {
		t.Fatalf("torn tail not detected: %+v", info)
	}
	if len(info.Poisoned) != 1 || info.Poisoned[0] != "s0" {
		t.Fatalf("poisoned = %v, want [s0]", info.Poisoned)
	}

	// The recovery pass must resync s0 with a full snapshot.
	waitIdle(t, h2.ctl)
	pushes := h2.sink.Pushes()
	if len(pushes) == 0 {
		t.Fatal("no resync push after torn-tail recovery")
	}
	last := pushes[len(pushes)-1]
	if !last.Snapshot || last.Dest != "s0" {
		t.Fatalf("final push = %+v, want snapshot for s0", last)
	}
	if err := checkConvergence(h2.ctl, h2.sink, h2.ctl.cfg.Base); err != nil {
		t.Fatal(err)
	}
}

// tearTail appends garbage to the newest journal segment so replay finds a
// broken frame at the tail.
func tearTail(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	newest := ""
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".seg") && e.Name() > newest {
			newest = e.Name()
		}
	}
	if newest == "" {
		t.Fatal("no segment to tear")
	}
	f, err := os.OpenFile(filepath.Join(dir, newest), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverRestoresDeadLetters: a dead-lettered delta survives the
// restart in the DLQ and its destination stays poisoned.
func TestRecoverRestoresDeadLetters(t *testing.T) {
	dir := t.TempDir()
	j := openJournal(t, dir)
	perm := errors.New("permanent sink failure")
	h := startCtl(t, func(cfg *Config) { cfg.Journal = j })
	h.sink.FailNext = func(call int, d Delta) error { return perm }
	if err := h.ctl.Offer(Event{Link: h.links[0], Up: false}); err != nil {
		t.Fatal(err)
	}
	s := h.wait(t, 1)[0]
	if s.Outcome != OutcomeError {
		t.Fatalf("settlement = %+v, want dead-letter error", s)
	}
	h.stop()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := openJournal(t, dir)
	base := mustSim(t, 6)
	ctl, info, err := Recover(Config{
		Base: base, Dests: []string{"s0"}, K: 1, Sink: h.sink,

		Journal: j2,
	})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if info.DeadLetters == 0 {
		t.Fatal("dead letters not restored")
	}
	if len(info.Poisoned) != 1 || info.Poisoned[0] != "s0" {
		t.Fatalf("poisoned = %v, want [s0]", info.Poisoned)
	}
	dls := ctl.DeadLetters()
	if len(dls) == 0 || dls[0].Delta.Dest != "s0" {
		t.Fatalf("restored DLQ = %+v", dls)
	}
}

// TestPusherWatermarkDedup: a patch delta at or below the recovered ack
// watermark settles as delivered without contacting the sink.
func TestPusherWatermarkDedup(t *testing.T) {
	sink := NewMemSink()
	sink.FailNext = func(int, Delta) error {
		t.Error("sink contacted for a duplicate delta")
		return nil
	}
	results := make(chan error, 1)
	p := newPusher(sink, 4, func(_ pushJob, err error) { results <- err })
	p.obs = nil
	p.seedRecovery(nil, map[string]uint64{"s0": 5}, nil)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); p.run(ctx) }()

	p.enqueue(pushJob{delta: Delta{Dest: "s0", Epoch: 5, Set: []TableEntry{{In: "x", At: "y"}}}})
	select {
	case err := <-results:
		if !errors.Is(err, errDuplicatePush) {
			t.Fatalf("duplicate resolved with %v, want errDuplicatePush", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("duplicate never resolved")
	}
	if len(sink.Pushes()) != 0 {
		t.Fatalf("sink saw %d pushes, want 0", len(sink.Pushes()))
	}
	close(p.queue)
	<-done
}

// TestJournalFailureStopsRun: a latched journal failure surfaces as Run's
// return error instead of being silently ignored.
func TestJournalFailureStopsRun(t *testing.T) {
	dir := t.TempDir()
	j := openJournal(t, dir)
	h := startCtl(t, func(cfg *Config) { cfg.Journal = j })
	// Close the journal out from under the controller: the next append
	// latches and Run must exit with the journal error.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.ctl.Offer(Event{Link: h.links[0], Up: false}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-h.exit:
		h.exited = true
		h.stopped = true
		if err == nil || !strings.Contains(err.Error(), "journal") {
			t.Fatalf("Run returned %v, want journal failure", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not exit on journal failure")
	}
}

// TestResyncPoisonRacesEpochAdvance: a destination is poisoned by a
// dead-letter, and a superseding event lands in exactly the window between
// the resync repair and its push (second ctl-epoch consult, Call fault).
// The stale resync must be discarded — the sink must never see a snapshot
// computed against the superseded epoch — and the poison must survive until
// the snapshot for the *new* epoch is delivered.
func TestResyncPoisonRacesEpochAdvance(t *testing.T) {
	faultinject.LeakCheck(t)
	boom := errors.New("sink rejected the delta")
	var h *harness
	var consults atomic.Int32
	inj := faultinject.New(
		faultinject.Fault{
			Stage: resilience.StageCtlPush,
			Kind:  faultinject.Error,
			Err:   boom,
			Times: 1,
		},
		faultinject.Fault{
			Stage: resilience.StageCtlEpoch,
			Kind:  faultinject.Call,
			Times: 2,
			Do: func() {
				// Consult #1 is the original pass (whose push dead-letters);
				// consult #2 is the resync pass — inject the epoch advance
				// into its repair-to-push window.
				if consults.Add(1) == 2 {
					if err := h.ctl.Offer(Event{Link: h.links[1], Up: false}); err != nil {
						t.Errorf("racing offer: %v", err)
					}
				}
			},
		},
	)
	h = startCtl(t, func(cfg *Config) { cfg.Hook = inj })

	if err := h.ctl.Offer(Event{Link: h.links[0], Up: false}); err != nil {
		t.Fatal(err)
	}
	settlements := h.wait(t, 2)
	var dle *DeadLetterError
	if s := settlements[0]; s.Outcome != OutcomeError || !errors.As(s.Err, &dle) {
		t.Fatalf("first settlement = %+v, want dead-letter", s)
	}
	if s := settlements[1]; s.Outcome != OutcomePushed || s.Epoch != 2 {
		t.Fatalf("racing settlement = %+v, want pushed at epoch 2", s)
	}

	waitIdle(t, h.ctl)
	pushes := h.sink.Pushes()
	if len(pushes) != 1 {
		t.Fatalf("sink saw %d pushes, want exactly the epoch-2 resync snapshot: %+v", len(pushes), pushes)
	}
	if !pushes[0].Snapshot || pushes[0].Epoch != 2 {
		t.Fatalf("resync push = dest %s epoch %d snapshot %v, want snapshot at epoch 2",
			pushes[0].Dest, pushes[0].Epoch, pushes[0].Snapshot)
	}
	if got := h.ctl.push.poisonedDests(); len(got) != 0 {
		t.Fatalf("destinations still poisoned after resync: %v", got)
	}
	snap := h.obs.Snapshot()
	if snap.Counter(obs.CtlStale) == 0 {
		t.Error("stale-pass discard not counted")
	}
	if snap.Counter(obs.CtlResyncs) != 1 {
		t.Error("CtlResyncs not counted")
	}
	if err := checkConvergence(h.ctl, h.sink, h.ctl.cfg.Base); err != nil {
		t.Fatal(err)
	}
}
