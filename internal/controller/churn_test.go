package controller

import (
	"context"
	"encoding/json"
	"os"
	"strconv"
	"testing"

	"syrep/internal/resilience/faultinject"
)

// churnArtifact is the committed SLO evidence of a churn run: the gate
// writes it as JSON when SYREP_CHURN_OUT names a file (the `make churn`
// target does), so the latency histogram and warm/cold split are reviewable.
type churnArtifact struct {
	Seed         int64      `json:"seed"`
	TargetEpochs int        `json:"targetEpochs"`
	Result       *SimResult `json:"result"`
}

// TestChurnSimulation is the churn gate: a seeded Poisson event stream
// driven through a live controller under -race, asserting the trichotomy,
// coalescing, epoch discipline, and warm-path dominance end to end.
//
// The default target keeps `go test` quick; `make churn` raises it to the
// full 1000 epochs via SYREP_CHURN_EPOCHS and commits the SLO artifact.
func TestChurnSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("churn simulation skipped in -short mode")
	}
	faultinject.LeakCheck(t)
	target := 150
	if s := os.Getenv("SYREP_CHURN_EPOCHS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("SYREP_CHURN_EPOCHS=%q is not a positive integer", s)
		}
		target = n
	}
	const seed = 42
	res, err := RunSim(context.Background(), SimConfig{Seed: seed, TargetEpochs: target})
	if err != nil {
		t.Fatal(err)
	}

	// Epoch coverage: the stream drove at least the target number of
	// distinct topology epochs (generation stops once reached).
	if res.Epochs < uint64(target) {
		t.Errorf("drove %d epochs, want >= %d", res.Epochs, target)
	}

	// Trichotomy: every offer is accounted for — rejected retryably at the
	// inbox, or settled on exactly one arm. RunSim already failed any
	// settlement outside the trichotomy; here the totals must balance.
	settled := 0
	for _, n := range res.Settled {
		settled += n
	}
	if res.Offered != res.Rejected+settled {
		t.Errorf("accounting leak: offered %d != rejected %d + settled %d",
			res.Offered, res.Rejected, settled)
	}
	if len(res.Settlements) != settled {
		t.Errorf("settlement log has %d entries, tallies say %d", len(res.Settlements), settled)
	}
	if res.Settled[OutcomePushed.String()] == 0 {
		t.Error("no event settled pushed")
	}

	// Coalescing: the flap bursts collapsed (each burst of 3 yields at most
	// one state change).
	if res.Coalesced == 0 {
		t.Error("no events coalesced despite flap bursts")
	}

	// Epoch discipline: RunSim's convergence check already proved no stale
	// table was pushed; at full scale the race window is hit often enough
	// that staleness discards must actually occur.
	if target >= 500 && res.Stale == 0 {
		t.Error("no stale repairs discarded over a full-scale run")
	}

	// Warm-path dominance: after the first few cold syntheses the cache
	// serves warm-start repairs — the paper's speedup claim, visible in the
	// repair mix and the latency histogram.
	if res.WarmRepairs <= res.ColdSynths {
		t.Errorf("warm repairs (%d) do not dominate cold syntheses (%d)",
			res.WarmRepairs, res.ColdSynths)
	}

	// The latency histogram observed every settlement — it is the SLO
	// evidence the artifact commits.
	if res.Latency.Count != int64(settled) {
		t.Errorf("latency histogram count = %d, want %d", res.Latency.Count, settled)
	}

	// An in-memory sink never fails: dead letters here would mean the
	// pusher invented failures.
	if res.DeadLetters != 0 {
		t.Errorf("%d dead letters against a reliable sink", res.DeadLetters)
	}

	t.Logf("churn: epochs=%d offered=%d settled=%v coalesced=%d stale=%d warm=%d cold=%d p99=%v",
		res.Epochs, res.Offered, res.Settled, res.Coalesced, res.Stale,
		res.WarmRepairs, res.ColdSynths, res.Latency.Quantile(0.99))

	if out := os.Getenv("SYREP_CHURN_OUT"); out != "" {
		art := churnArtifact{Seed: seed, TargetEpochs: target, Result: res}
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			t.Fatalf("marshal artifact: %v", err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatalf("write artifact: %v", err)
		}
		t.Logf("churn: SLO artifact written to %s", out)
	}
}
