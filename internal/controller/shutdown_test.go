package controller

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"syrep/internal/resilience"
	"syrep/internal/resilience/faultinject"
)

// gatedSink wraps a MemSink so tests can observe a push in flight and hold
// it there until released.
type gatedSink struct {
	inner   *MemSink
	entered chan struct{}
	release chan struct{}
}

func newGatedSink() *gatedSink {
	return &gatedSink{
		inner:   NewMemSink(),
		entered: make(chan struct{}, 16),
		release: make(chan struct{}),
	}
}

func (g *gatedSink) Push(ctx context.Context, d Delta) error {
	g.entered <- struct{}{}
	select {
	case <-g.release:
	case <-ctx.Done():
		return context.Cause(ctx)
	}
	return g.inner.Push(ctx, d)
}

// TestShutdownCompletesInFlightPush: a push already at the sink when
// shutdown begins finishes under DrainGrace, and its events settle pushed —
// the drain is graceful, not a guillotine.
func TestShutdownCompletesInFlightPush(t *testing.T) {
	faultinject.LeakCheck(t)
	gate := newGatedSink()
	h := startCtl(t, func(cfg *Config) {
		cfg.Sink = gate
		cfg.DrainGrace = 20 * time.Second
	})

	if err := h.ctl.Offer(Event{Link: h.links[0], Up: false}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-gate.entered: // the delta is in flight at the sink
	case <-time.After(30 * time.Second):
		t.Fatal("push never reached the sink")
	}
	h.stopAsync()
	// Shutdown is now waiting on the pusher; release the sink.
	close(gate.release)
	if err := h.waitExit(t); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v", err)
	}
	s := h.wait(t, 1)[0]
	if s.Outcome != OutcomePushed || s.Err != nil {
		t.Fatalf("settlement = %+v, want pushed (in-flight push completed)", s)
	}
	if len(gate.inner.Pushes()) != 1 {
		t.Error("in-flight push not applied")
	}
}

// TestShutdownRejectsQueuedRetryably: events still queued — in the inbox or
// applied but unsettled — when shutdown wins settle with the retryable
// ErrShuttingDown, and post-shutdown offers reject with ErrClosed.
func TestShutdownRejectsQueuedRetryably(t *testing.T) {
	faultinject.LeakCheck(t)
	entered := make(chan struct{})
	release := make(chan struct{})
	inj := faultinject.New(faultinject.Fault{
		Stage: resilience.StageCtlRepair,
		Kind:  faultinject.Call,
		Times: 1,
		Do: func() {
			close(entered)
			<-release
		},
	})
	h := startCtl(t, func(cfg *Config) { cfg.Hook = inj })

	if err := h.ctl.Offer(Event{Link: h.links[0], Up: false}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered: // reconcile is mid-repair and will observe the cancel
	case <-time.After(30 * time.Second):
		t.Fatal("repair never started")
	}
	// Two more events queue behind the stalled pass.
	for _, l := range []string{h.links[1], h.links[2]} {
		if err := h.ctl.Offer(Event{Link: l, Up: false}); err != nil {
			t.Fatal(err)
		}
	}
	h.stopAsync()
	close(release)
	if err := h.waitExit(t); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v", err)
	}
	for _, s := range h.wait(t, 3) {
		if s.Outcome != OutcomeError || !errors.Is(s.Err, ErrShuttingDown) {
			t.Errorf("settlement = %+v, want retryable ErrShuttingDown", s)
		}
		if !Retryable(s.Err) {
			t.Error("shutdown rejection must be retryable")
		}
	}
	err := h.ctl.Offer(Event{Link: h.links[0], Up: true})
	if !errors.Is(err, ErrClosed) || !Retryable(err) {
		t.Errorf("post-shutdown offer = %v, want retryable ErrClosed", err)
	}
}

// TestShutdownGraceExpiry: a sink that never answers cannot hold shutdown
// hostage — DrainGrace expires, the push force-cancels, and its events
// settle with a typed dead-letter error.
func TestShutdownGraceExpiry(t *testing.T) {
	faultinject.LeakCheck(t)
	gate := newGatedSink() // release never closed: the sink hangs forever
	h := startCtl(t, func(cfg *Config) {
		cfg.Sink = gate
		cfg.DrainGrace = 50 * time.Millisecond
		cfg.PushTimeout = 10 * time.Second
		cfg.PushAttempts = 1
	})

	if err := h.ctl.Offer(Event{Link: h.links[0], Up: false}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-gate.entered:
	case <-time.After(30 * time.Second):
		t.Fatal("push never reached the sink")
	}
	h.stopAsync()
	if err := h.waitExit(t); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v", err)
	}
	s := h.wait(t, 1)[0]
	var dle *DeadLetterError
	if s.Outcome != OutcomeError || !errors.As(s.Err, &dle) {
		t.Fatalf("settlement = %+v, want a dead-letter error after grace expiry", s)
	}
	if len(gate.inner.Pushes()) != 0 {
		t.Error("hung push somehow applied")
	}
}

// TestShutdownFlushesSnapshotOnce: the obs snapshot flushes to SnapshotW
// exactly once however many times the flush path is reached.
func TestShutdownFlushesSnapshotOnce(t *testing.T) {
	faultinject.LeakCheck(t)
	var buf bytes.Buffer
	h := startCtl(t, func(cfg *Config) { cfg.SnapshotW = &buf })

	if err := h.ctl.Offer(Event{Link: h.links[0], Up: false}); err != nil {
		t.Fatal(err)
	}
	if s := h.wait(t, 1)[0]; s.Outcome != OutcomePushed {
		t.Fatalf("settlement = %+v, want pushed", s)
	}
	h.stop()
	first := buf.Len()
	if first == 0 {
		t.Fatal("snapshot not flushed on shutdown")
	}
	var snap map[string]any
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("flushed snapshot is not valid JSON: %v", err)
	}
	h.ctl.flushSnapshot() // a second reach must be a no-op
	if buf.Len() != first {
		t.Error("snapshot flushed more than once")
	}
}

// stopAsync begins shutdown without waiting (the test gates the drain).
func (h *harness) stopAsync() { h.cancel() }

// waitExit waits for Run to return and disarms the harness stop.
func (h *harness) waitExit(t *testing.T) error {
	t.Helper()
	select {
	case err := <-h.exit:
		h.exited = true
		return err
	case <-time.After(30 * time.Second):
		t.Fatal("controller did not exit")
		return nil
	}
}
