package controller

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"syrep/internal/cache"
	"syrep/internal/network"
	"syrep/internal/obs"
	"syrep/internal/server"
)

// SimConfig parameterizes the Poisson churn simulation: a seeded stream of
// link up/down events with exponential inter-arrival times driven through a
// live controller against an in-memory sink. The same seed reproduces the
// same event stream.
type SimConfig struct {
	// Seed keys the topology chords, the event stream, and the pusher's
	// backoff jitter.
	Seed int64
	// Nodes sizes the ring-plus-chords topology (default 8).
	Nodes int
	// Dests is how many destination nodes the controller maintains
	// (default 2).
	Dests int
	// TargetEpochs is the number of distinct topology epochs to drive
	// (default 1000). Generation stops at MaxEvents regardless.
	TargetEpochs int
	// MaxEvents caps offered events (default 50 × TargetEpochs).
	MaxEvents int
	// MeanGap is the mean of the exponential inter-arrival time
	// (default 500µs).
	MeanGap time.Duration
	// FlapEvery makes every Nth event a flap burst — three opposing
	// toggles of one link offered back to back — exercising coalescing
	// (default 25; 0 disables).
	FlapEvery int
	// MaxDown caps concurrently failed links so most topologies stay
	// 2-connected and repairable (default 2).
	MaxDown int
	// Obs observes the run; one is created when nil.
	Obs *obs.Observer
}

func (cfg SimConfig) withDefaults() SimConfig {
	if cfg.Nodes <= 3 {
		cfg.Nodes = 8
	}
	if cfg.Dests <= 0 {
		cfg.Dests = 2
	}
	if cfg.TargetEpochs <= 0 {
		cfg.TargetEpochs = 1000
	}
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = 50 * cfg.TargetEpochs
	}
	if cfg.MeanGap <= 0 {
		cfg.MeanGap = 500 * time.Microsecond
	}
	if cfg.FlapEvery == 0 {
		cfg.FlapEvery = 25
	}
	if cfg.MaxDown <= 0 {
		cfg.MaxDown = 2
	}
	return cfg
}

// SimResult is the simulation's accounting: every offer either rejected at
// the inbox or settled through the trichotomy, plus the observability
// evidence the churn gate asserts on (epochs driven, staleness discards,
// coalescing, warm/cold repair split, and the event-latency histogram).
type SimResult struct {
	Offered     int               `json:"offered"`
	Rejected    int               `json:"rejected"`
	Settled     map[string]int    `json:"settled"`
	Settlements []Settlement      `json:"-"`
	Epochs      uint64            `json:"epochs"`
	Stale       int64             `json:"staleRepairsDiscarded"`
	Coalesced   int64             `json:"coalescedEvents"`
	Noops       int64             `json:"noopEvents"`
	WarmRepairs int64             `json:"warmRepairs"`
	ColdSynths  int64             `json:"coldSyntheses"`
	Degraded    int64             `json:"degradedTables"`
	DeadLetters int64             `json:"deadLetters"`
	Pushes      int64             `json:"pushes"`
	Latency     obs.HistogramStat `json:"latency"`
	FinalTables map[string]int    `json:"finalTableSizes"`
}

// SimNetwork builds the simulation topology: an n-node ring with skip-2
// chords, so every node has degree 4 and the graph tolerates the
// simulation's concurrent link failures while staying 2-connected almost
// always.
func SimNetwork(nodes int) (*network.Network, error) {
	b := network.NewBuilder("churn-sim")
	ids := make([]network.NodeID, nodes)
	for i := range ids {
		ids[i] = b.AddNode(fmt.Sprintf("s%d", i))
	}
	for i := 0; i < nodes; i++ {
		b.AddEdge(ids[i], ids[(i+1)%nodes])
		b.AddEdge(ids[i], ids[(i+2)%nodes])
	}
	return b.Build()
}

// RunSim drives one churn simulation to quiescence and returns its
// accounting. It asserts internal consistency (every accepted event
// settled, delta streams reconstructed the controller's tables, no settled
// table references a failed link) and reports violations as errors; the
// churn gate layers its own assertions on the result.
func RunSim(ctx context.Context, cfg SimConfig) (*SimResult, error) {
	cfg = cfg.withDefaults()
	base, err := SimNetwork(cfg.Nodes)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	o := cfg.Obs
	if o == nil {
		o = obs.New(nil)
	}
	dests := make([]string, cfg.Dests)
	for i := range dests {
		dests[i] = base.NodeName(network.NodeID(i * (cfg.Nodes / cfg.Dests)))
	}
	sink := NewMemSink()

	var settleMu sync.Mutex
	var settlements []Settlement
	onSettle := func(s Settlement) {
		settleMu.Lock()
		defer settleMu.Unlock()
		settlements = append(settlements, s)
	}

	ctl, err := New(Config{
		Base:      base,
		Dests:     dests,
		K:         1,
		Sink:      sink,
		Cache:     cache.New(cache.Config{MaxEntries: 4096, Obs: o}),
		Breaker:   server.BreakerConfig{Threshold: 5, Cooldown: 50 * time.Millisecond},
		RetrySeed: cfg.Seed,
		// Tight repair budget: a dest made unsolvable by the current
		// failure set should degrade quickly, not stall the pass.
		RepairTimeout: 500 * time.Millisecond,
		Obs:           o,
		OnSettle:      onSettle,
	})
	if err != nil {
		return nil, err
	}

	runCtx, stop := context.WithCancel(ctx)
	defer stop()
	runExit := make(chan error, 1)
	go func() {
		runExit <- ctl.Run(runCtx)
	}()

	// Event generation: seeded Poisson arrivals toggling random links, with
	// periodic flap bursts. Up events only revive failed links, and the
	// concurrent failure count stays capped so repairs mostly succeed.
	links := base.EdgeKeys()
	sort.Strings(links)
	desiredDown := make(map[string]bool)
	accepted, rejected, offered := 0, 0, 0
	offer := func(link string, up bool) {
		offered++
		if err := ctl.Offer(Event{Link: link, Up: up}); err != nil {
			rejected++
			if !Retryable(err) {
				panic(fmt.Sprintf("sim: non-retryable offer rejection: %v", err))
			}
			return
		}
		accepted++
	}
	nextToggle := func() (string, bool) {
		link := links[rng.Intn(len(links))]
		if desiredDown[link] {
			delete(desiredDown, link)
			return link, true
		}
		if len(desiredDown) >= cfg.MaxDown {
			for _, l := range links { // deterministic: revive lowest failed link
				if desiredDown[l] {
					delete(desiredDown, l)
					return l, true
				}
			}
		}
		desiredDown[link] = true
		return link, false
	}
	for offered < cfg.MaxEvents && ctl.Epoch() < uint64(cfg.TargetEpochs) {
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		link, up := nextToggle()
		if cfg.FlapEvery > 0 && offered%cfg.FlapEvery == cfg.FlapEvery-1 {
			// Flap burst: three opposing toggles back to back; the inbox
			// collapses whatever it still holds to the final state.
			offer(link, up)
			offer(link, !up)
			offer(link, up)
		} else {
			offer(link, up)
		}
		gap := time.Duration(rng.ExpFloat64() * float64(cfg.MeanGap))
		time.Sleep(gap)
	}

	// Quiesce: every accepted event settles (the drain below rejects any
	// remainder, which also settles), then shut the controller down.
	quiesce := time.NewTimer(2 * time.Minute)
	defer quiesce.Stop()
	for {
		settleMu.Lock()
		n := len(settlements)
		settleMu.Unlock()
		if n >= accepted {
			break
		}
		select {
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		case <-quiesce.C:
			stop()
			<-runExit
			return nil, fmt.Errorf("sim: quiesce timeout with %d/%d settled", n, accepted)
		case <-time.After(2 * time.Millisecond):
		}
	}
	stop()
	if err := <-runExit; err != nil && !errors.Is(err, context.Canceled) {
		return nil, err
	}

	settleMu.Lock()
	final := append([]Settlement(nil), settlements...)
	settleMu.Unlock()
	if len(final) != accepted {
		return nil, fmt.Errorf("sim: %d settlements for %d accepted events", len(final), accepted)
	}

	if err := checkConvergence(ctl, sink, base); err != nil {
		return nil, err
	}

	snap := o.Snapshot()
	res := &SimResult{
		Offered:     offered,
		Rejected:    rejected,
		Settled:     make(map[string]int),
		Settlements: final,
		Epochs:      ctl.Epoch(),
		Stale:       snap.Counter(obs.CtlStale),
		Coalesced:   snap.Counter(obs.CtlCoalesced),
		Noops:       snap.Counter(obs.CtlNoops),
		WarmRepairs: snap.Counter(obs.CtlWarmRepairs),
		ColdSynths:  snap.Counter(obs.CtlColdSynths),
		Degraded:    snap.Counter(obs.CtlDegraded),
		DeadLetters: snap.Counter(obs.CtlDeadLetters),
		Pushes:      snap.Counter(obs.CtlPushes),
		Latency:     snap.Histogram(obs.CtlEventLatency),
		FinalTables: make(map[string]int),
	}
	for _, s := range final {
		switch s.Outcome {
		case OutcomePushed, OutcomeDegraded, OutcomeError:
			res.Settled[s.Outcome.String()]++
		default:
			return nil, fmt.Errorf("sim: settlement outside the trichotomy: %+v", s)
		}
	}
	for _, d := range dests {
		res.FinalTables[d] = len(sink.Table(d))
	}
	return res, nil
}

// checkConvergence proves the epoch discipline end to end: the sink's
// receiver-side tables (reconstructed purely from the delta stream) must
// equal the controller's last-pushed tables, and no settled table may
// reference a link that was down at the final epoch — a stale push would.
func checkConvergence(ctl *Controller, sink *MemSink, base *network.Network) error {
	ctl.mu.Lock()
	lastPushed := make(map[string]map[string]TableEntry, len(ctl.lastPushed))
	for d, t := range ctl.lastPushed {
		lastPushed[d] = t
	}
	downLinks := make(map[string]bool, len(ctl.down))
	for l := range ctl.down {
		downLinks[l] = true
	}
	ctl.mu.Unlock()
	for dest, want := range lastPushed {
		got := sink.Table(dest)
		if len(got) != len(want) {
			return fmt.Errorf("sim: sink table for %s has %d entries, controller pushed %d",
				dest, len(got), len(want))
		}
		for k, w := range want {
			g, ok := got[k]
			if !ok || !g.equal(w) {
				return fmt.Errorf("sim: sink table for %s diverges at %s", dest, k)
			}
			for _, ref := range append([]string{w.In}, w.Prio...) {
				if downLinks[ref] {
					return fmt.Errorf("sim: final table for %s references failed link %s (stale push)",
						dest, ref)
				}
			}
		}
	}
	return nil
}
