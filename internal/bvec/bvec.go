// Package bvec provides fixed-width symbolic bit-vectors over BDD variables.
// The SyRep encoding represents edges, nodes and priority-list parameters as
// binary-encoded integers (Section III-A: "any finite set S can be
// represented by ceil(log |S|) Boolean variables"); bvec supplies the
// comparison and membership predicates the encoding needs.
package bvec

import (
	"fmt"

	"syrep/internal/bdd"
)

// Vec is a little-endian vector of BDD variables: Bits[0] is the least
// significant bit.
type Vec struct {
	m    *bdd.Manager
	bits []bdd.Var
}

// New allocates width fresh variables named prefix0..prefix{width-1} and
// returns the vector.
func New(m *bdd.Manager, prefix string, width int) Vec {
	return Vec{m: m, bits: m.NewVars(prefix, width)}
}

// FromVars wraps existing variables (little-endian) as a vector.
func FromVars(m *bdd.Manager, vars []bdd.Var) Vec {
	return Vec{m: m, bits: append([]bdd.Var(nil), vars...)}
}

// Width returns the number of bits.
func (v Vec) Width() int { return len(v.bits) }

// Bits returns the underlying variables, little-endian. The slice is shared.
func (v Vec) Bits() []bdd.Var { return v.bits }

// WidthFor returns the number of bits needed to encode values 0..n-1
// (at least 1).
func WidthFor(n int) int {
	w := 1
	for (1 << w) < n {
		w++
	}
	return w
}

// EqConst returns the BDD asserting v == c.
func (v Vec) EqConst(c uint) bdd.Ref {
	if c>>uint(len(v.bits)) != 0 {
		return bdd.False // constant not representable
	}
	m := v.m
	r := bdd.True
	// Conjoin from the most significant (highest variable) down so the BDD
	// builds bottom-up without intermediate blowup.
	for i := len(v.bits) - 1; i >= 0; i-- {
		r = m.And(m.Lit(v.bits[i], c&(1<<uint(i)) != 0), r)
	}
	return r
}

// Eq returns the BDD asserting v == w (bitwise equality). Both vectors must
// have the same width; mismatched widths are a caller error reported as a
// returned error rather than a panic, since vector widths can derive from
// caller-supplied set sizes.
func (v Vec) Eq(w Vec) (bdd.Ref, error) {
	if len(v.bits) != len(w.bits) {
		return bdd.False, fmt.Errorf("bvec: width mismatch %d vs %d", len(v.bits), len(w.bits))
	}
	m := v.m
	r := bdd.True
	for i := len(v.bits) - 1; i >= 0; i-- {
		bit := m.Biimp(m.VarRef(v.bits[i]), m.VarRef(w.bits[i]))
		r = m.And(bit, r)
	}
	return r, nil
}

// MemberOf returns the BDD asserting v ∈ consts.
func (v Vec) MemberOf(consts []uint) bdd.Ref {
	m := v.m
	r := bdd.False
	for _, c := range consts {
		r = m.Or(r, v.EqConst(c))
	}
	return r
}

// LessConst returns the BDD asserting v < c (unsigned comparison). It is
// used to constrain binary-encoded values to a set's cardinality.
func (v Vec) LessConst(c uint) bdd.Ref {
	m := v.m
	if c>>uint(len(v.bits)) != 0 {
		return bdd.True // every representable value is < c
	}
	// LSB-to-MSB accumulation: at each bit, v < c iff the strict decision is
	// made here (v_i=0, c_i=1) or this bit ties and the lower bits decide.
	r := bdd.False // empty prefix ties -> not less
	for i := 0; i < len(v.bits); i++ {
		ci := c&(1<<uint(i)) != 0
		vi := m.VarRef(v.bits[i])
		if ci {
			// v_i=0 -> strictly less here; v_i=1 -> tie, defer to lower bits.
			r = m.Or(m.Not(vi), m.And(vi, r))
		} else {
			// v_i=1 -> strictly greater here; v_i=0 -> tie.
			r = m.And(m.Not(vi), r)
		}
	}
	return r
}

// Decode extracts the integer value of the vector from a satisfying
// assignment; don't-care bits default to 0.
func (v Vec) Decode(a bdd.Assignment) uint {
	var out uint
	for i, b := range v.bits {
		if a[b] {
			out |= 1 << uint(i)
		}
	}
	return out
}

// Assign returns the partial assignment mapping the vector's bits to the
// binary encoding of c.
func (v Vec) Assign(c uint) map[bdd.Var]bool {
	out := make(map[bdd.Var]bool, len(v.bits))
	for i, b := range v.bits {
		out[b] = c&(1<<uint(i)) != 0
	}
	return out
}

// Interleave allocates two vectors of the given width whose bits alternate
// in the variable order (a0, b0, a1, b1, ...). Interleaved vectors make
// Eq BDDs linear-sized and variable renamings order-preserving, which the
// encode package relies on for its fixpoint computation.
func Interleave(m *bdd.Manager, prefixA, prefixB string, width int) (Vec, Vec) {
	a := Vec{m: m, bits: make([]bdd.Var, width)}
	b := Vec{m: m, bits: make([]bdd.Var, width)}
	for i := 0; i < width; i++ {
		a.bits[i] = m.NewVar(fmt.Sprintf("%s%d", prefixA, i))
		b.bits[i] = m.NewVar(fmt.Sprintf("%s%d", prefixB, i))
	}
	return a, b
}
