package bvec

import (
	"testing"

	"syrep/internal/bdd"
)

func TestWidthFor(t *testing.T) {
	tests := []struct{ n, want int }{
		{0, 1}, {1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10},
	}
	for _, tt := range tests {
		if got := WidthFor(tt.n); got != tt.want {
			t.Errorf("WidthFor(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestEqConstExhaustive(t *testing.T) {
	m := bdd.New()
	v := New(m, "v", 3)
	for c := uint(0); c < 8; c++ {
		f := v.EqConst(c)
		for val := uint(0); val < 8; val++ {
			got := m.Eval(f, assignFor(v, val))
			if got != (val == c) {
				t.Errorf("EqConst(%d) at %d = %v", c, val, got)
			}
		}
	}
	// Unrepresentable constant.
	if v.EqConst(8) != bdd.False {
		t.Error("EqConst(8) on 3-bit vec != False")
	}
}

func TestEq(t *testing.T) {
	m := bdd.New()
	a, b := Interleave(m, "a", "b", 3)
	f, err := a.Eq(b)
	if err != nil {
		t.Fatalf("Eq: %v", err)
	}
	for x := uint(0); x < 8; x++ {
		for y := uint(0); y < 8; y++ {
			assign := assignFor(a, x)
			for k, v := range assignFor(b, y) {
				assign[k] = v
			}
			if got := m.Eval(f, assign); got != (x == y) {
				t.Errorf("Eq at (%d,%d) = %v", x, y, got)
			}
		}
	}
}

func TestEqWidthMismatchErrors(t *testing.T) {
	m := bdd.New()
	a := New(m, "a", 2)
	b := New(m, "b", 3)
	if _, err := a.Eq(b); err == nil {
		t.Error("width mismatch did not return an error")
	}
}

func TestMemberOf(t *testing.T) {
	m := bdd.New()
	v := New(m, "v", 3)
	set := []uint{1, 4, 6}
	f := v.MemberOf(set)
	want := map[uint]bool{1: true, 4: true, 6: true}
	for val := uint(0); val < 8; val++ {
		if got := m.Eval(f, assignFor(v, val)); got != want[val] {
			t.Errorf("MemberOf at %d = %v, want %v", val, got, want[val])
		}
	}
	if v.MemberOf(nil) != bdd.False {
		t.Error("MemberOf(empty) != False")
	}
}

func TestLessConstExhaustive(t *testing.T) {
	m := bdd.New()
	v := New(m, "v", 4)
	for c := uint(0); c <= 20; c++ {
		f := v.LessConst(c)
		for val := uint(0); val < 16; val++ {
			if got := m.Eval(f, assignFor(v, val)); got != (val < c) {
				t.Errorf("LessConst(%d) at %d = %v", c, val, got)
			}
		}
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	m := bdd.New()
	v := New(m, "v", 5)
	for c := uint(0); c < 32; c += 3 {
		f := v.EqConst(c)
		a := m.AnySat(f)
		if a == nil {
			t.Fatalf("EqConst(%d) unsatisfiable", c)
		}
		if got := v.Decode(a); got != c {
			t.Errorf("Decode(AnySat(EqConst(%d))) = %d", c, got)
		}
	}
}

func TestAssign(t *testing.T) {
	m := bdd.New()
	v := New(m, "v", 3)
	f := v.EqConst(5)
	assign := v.Assign(5)
	if !m.Eval(f, bdd.Assignment(assign)) {
		t.Error("Assign(5) does not satisfy EqConst(5)")
	}
	if m.Eval(f, bdd.Assignment(v.Assign(4))) {
		t.Error("Assign(4) satisfies EqConst(5)")
	}
	// Restricting with Assign turns the predicate into a constant.
	if m.Restrict(f, v.Assign(5)) != bdd.True {
		t.Error("Restrict with matching Assign != True")
	}
	if m.Restrict(f, v.Assign(2)) != bdd.False {
		t.Error("Restrict with mismatched Assign != False")
	}
}

func TestInterleaveOrdering(t *testing.T) {
	m := bdd.New()
	a, b := Interleave(m, "a", "b", 4)
	if a.Width() != 4 || b.Width() != 4 {
		t.Fatal("widths wrong")
	}
	// Bits must alternate: a0 < b0 < a1 < b1 < ...
	for i := 0; i < 4; i++ {
		if a.Bits()[i] != bdd.Var(2*i) || b.Bits()[i] != bdd.Var(2*i+1) {
			t.Fatalf("interleave layout wrong: a=%v b=%v", a.Bits(), b.Bits())
		}
	}
	// Renaming a -> b is order-preserving, so Replace must work.
	pairs := make(map[bdd.Var]bdd.Var)
	for i := 0; i < 4; i++ {
		pairs[a.Bits()[i]] = b.Bits()[i]
	}
	rep := m.NewReplacement(pairs)
	f := a.EqConst(9)
	got := m.Replace(f, rep)
	if got != b.EqConst(9) {
		t.Error("Replace(a==9) != (b==9)")
	}
}

func TestFromVars(t *testing.T) {
	m := bdd.New()
	vars := m.NewVars("z", 3)
	v := FromVars(m, vars)
	if v.Width() != 3 {
		t.Fatal("width wrong")
	}
	if !m.Eval(v.EqConst(7), bdd.Assignment{vars[0]: true, vars[1]: true, vars[2]: true}) {
		t.Error("FromVars EqConst wrong")
	}
}

// assignFor builds a full assignment setting vec to val.
func assignFor(v Vec, val uint) bdd.Assignment {
	a := make(bdd.Assignment)
	for i, b := range v.Bits() {
		a[b] = val&(1<<uint(i)) != 0
	}
	return a
}
