package obs_test

import (
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"syrep/internal/obs"
)

// TestNilHistogramIsNoOp extends the nil-tap contract to histograms.
func TestNilHistogramIsNoOp(t *testing.T) {
	var h *obs.Histogram
	h.Observe(time.Second)
	if h.Count() != 0 {
		t.Errorf("nil histogram Count = %d, want 0", h.Count())
	}
	st := h.Stat()
	if st.Count != 0 || len(st.Counts) != 0 {
		t.Errorf("nil histogram Stat = %+v, want zero value", st)
	}
	var o *obs.Observer
	if o.Histogram("x") != nil {
		t.Error("nil observer returned a non-nil histogram")
	}
}

// TestHistogramBuckets drives observations into known buckets: an
// observation lands in the first bucket whose upper bound is >= the value,
// and anything past the last bound lands in +Inf.
func TestHistogramBuckets(t *testing.T) {
	h := obs.NewHistogram(0.001, 0.01, 0.1)
	for _, d := range []time.Duration{
		500 * time.Microsecond, // bucket 0 (≤1ms)
		time.Millisecond,       // bucket 0 (boundary is inclusive)
		2 * time.Millisecond,   // bucket 1
		50 * time.Millisecond,  // bucket 2
		time.Second,            // +Inf
	} {
		h.Observe(d)
	}
	st := h.Stat()
	want := []int64{2, 1, 1, 1}
	if len(st.Counts) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(st.Counts), len(want))
	}
	for i, w := range want {
		if st.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, st.Counts[i], w)
		}
	}
	if st.Count != 5 {
		t.Errorf("count = %d, want 5", st.Count)
	}
	wantSum := int64(500*time.Microsecond + time.Millisecond + 2*time.Millisecond +
		50*time.Millisecond + time.Second)
	if st.SumNanos != wantSum {
		t.Errorf("sum = %d, want %d", st.SumNanos, wantSum)
	}
}

// TestHistogramQuantile checks the SLO-readout semantics: Quantile returns
// the smallest bucket bound covering the q-quantile, +Inf past the last
// bound, and 0 on an empty histogram.
func TestHistogramQuantile(t *testing.T) {
	h := obs.NewHistogram(0.001, 0.01, 0.1)
	for i := 0; i < 90; i++ {
		h.Observe(500 * time.Microsecond)
	}
	for i := 0; i < 9; i++ {
		h.Observe(50 * time.Millisecond)
	}
	h.Observe(time.Minute)
	st := h.Stat()
	if got := st.Quantile(0.5); got != 0.001 {
		t.Errorf("p50 = %v, want 0.001", got)
	}
	if got := st.Quantile(0.99); got != 0.1 {
		t.Errorf("p99 = %v, want 0.1", got)
	}
	if got := st.Quantile(1); !math.IsInf(got, 1) {
		t.Errorf("p100 = %v, want +Inf", got)
	}
	if got := (obs.HistogramStat{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

// TestHistogramDefaultBuckets: creating without bounds uses DefaultBuckets,
// and the observer returns the same histogram on repeat lookups.
func TestHistogramDefaultBuckets(t *testing.T) {
	o := obs.New(nil)
	h := o.Histogram(obs.CtlEventLatency)
	if h != o.Histogram(obs.CtlEventLatency) {
		t.Fatal("repeat Histogram lookup returned a different instance")
	}
	h.Observe(time.Millisecond)
	st := o.Snapshot().Histogram(obs.CtlEventLatency)
	if len(st.Bounds) != len(obs.DefaultBuckets) {
		t.Errorf("bounds = %d, want %d (DefaultBuckets)", len(st.Bounds), len(obs.DefaultBuckets))
	}
	if st.Count != 1 {
		t.Errorf("count = %d, want 1", st.Count)
	}
}

// TestHistogramHammer observes concurrently from GOMAXPROCS goroutines and
// checks nothing is lost (run under -race in the obs gate).
func TestHistogramHammer(t *testing.T) {
	o := obs.New(nil)
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := o.Histogram("hammer", 0.001, 1)
			for i := 0; i < perWorker; i++ {
				h.Observe(time.Duration(i%3) * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	st := o.Snapshot().Histogram("hammer")
	if want := int64(workers * perWorker); st.Count != want {
		t.Errorf("count = %d, want %d", st.Count, want)
	}
	var sum int64
	for _, c := range st.Counts {
		sum += c
	}
	if sum != st.Count {
		t.Errorf("bucket sum %d != count %d", sum, st.Count)
	}
}
