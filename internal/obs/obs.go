// Package obs is SyRep's zero-dependency observability layer. It exists
// because the paper's headline claim is about *where the time goes*
// (verify/repair on a reduced network is orders of magnitude cheaper than
// full BDD synthesis, Fig. 6 and Tables I–II), and reproducing that claim at
// production scale requires structured measurements rather than ad-hoc
// prints.
//
// Three primitives:
//
//   - Stage spans: StartStage records a wall-clock span per pipeline stage
//     (reduce, heuristic, synth, verify, repair, expand, ...) and attaches
//     runtime/pprof goroutine labels, so CPU profiles attribute samples to
//     stages ("go tool pprof" tags view).
//
//   - Atomic counters and gauges: hot subsystems (the BDD engine, the
//     brute-force verifier, the repair loop) hold *Counter taps that stay
//     nil when no observer is attached. The disabled path is a single
//     predictable nil check — no allocation, no atomic, no branch
//     misprediction in steady state — so instrumentation stays compiled-in.
//
//   - Sinks and exporters: a Sink receives each completed span (the
//     in-memory Recorder retains them for --trace-out); Snapshot copies
//     every counter, gauge, and per-stage aggregate for an expvar-style
//     JSON dump or a Prometheus text exposition (export.go).
//
// An Observer is cheap (a few small maps) and is typically created per run,
// giving per-run isolation of counts; nothing in this package is global.
// All methods are safe on nil receivers so call sites need no guards.
package obs

import (
	"context"
	"math"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// StageLabel is the pprof label key under which stage spans tag goroutines.
// Profile samples taken while a stage runs carry {StageLabel: stageName}.
const StageLabel = "syrep_stage"

// Canonical metric names. Exporters emit them verbatim, so they double as
// the export schema (locked by the golden-file test).
const (
	BDDMkCalls        = "syrep_bdd_mk_calls_total"
	BDDNodesAllocated = "syrep_bdd_nodes_allocated_total"
	BDDCacheHits      = "syrep_bdd_cache_hits_total"
	BDDCacheMisses    = "syrep_bdd_cache_misses_total"
	BDDGCRuns         = "syrep_bdd_gc_runs_total"
	BDDNodesFreed     = "syrep_bdd_nodes_freed_total"
	BDDReorders       = "syrep_bdd_reorders_total"
	BDDPeakNodes      = "syrep_bdd_peak_nodes"

	VerifyScenarios = "syrep_verify_scenarios_total"
	VerifyTraces    = "syrep_verify_traces_total"
	VerifyFailing   = "syrep_verify_failing_total"
	VerifyCollected = "syrep_verify_collected_total"

	// Verification-backend routing (verify.Router): checks dispatched to
	// each backend, fast-path fallbacks to the brute-force oracle, and the
	// poly checker's search effort (DFS states visited).
	VerifyBackendBrute = "syrep_verify_backend_brute_total"
	VerifyBackendPoly  = "syrep_verify_backend_poly_total"
	VerifyPolyFallback = "syrep_verify_poly_fallback_total"
	VerifyPolyVisits   = "syrep_verify_poly_visits_total"

	RepairIterations   = "syrep_repair_iterations_total"
	RepairHolesPunched = "syrep_repair_holes_punched_total"

	// Cross-request synthesis cache (internal/cache). Counters tick on
	// lookups; the gauges mirror the cache's current footprint.
	CacheHits       = "syrep_cache_hits_total"
	CacheMisses     = "syrep_cache_misses_total"
	CacheDedups     = "syrep_cache_dedup_total"
	CacheWarmHits   = "syrep_cache_warm_hits_total"
	CacheWarmMisses = "syrep_cache_warm_misses_total"
	CacheEvictions  = "syrep_cache_evictions_total"
	CacheEntries    = "syrep_cache_entries"
	CacheBytes      = "syrep_cache_bytes"

	// Churn controller (internal/controller). Counters tick per event /
	// repair / push; the epoch gauge mirrors the reconciler's topology
	// version; the latency histogram is the event→repaired-table SLO.
	CtlEvents       = "syrep_ctl_events_total"
	CtlCoalesced    = "syrep_ctl_coalesced_total"
	CtlOverflows    = "syrep_ctl_inbox_overflow_total"
	CtlApplied      = "syrep_ctl_applied_total"
	CtlNoops        = "syrep_ctl_noop_events_total"
	CtlRepairs      = "syrep_ctl_repairs_total"
	CtlWarmRepairs  = "syrep_ctl_warm_repairs_total"
	CtlColdSynths   = "syrep_ctl_cold_syntheses_total"
	CtlDegraded     = "syrep_ctl_degraded_tables_total"
	CtlStale        = "syrep_ctl_stale_repairs_total"
	CtlErrors       = "syrep_ctl_repair_errors_total"
	CtlPushes       = "syrep_ctl_pushes_total"
	CtlPushRetries  = "syrep_ctl_push_retries_total"
	CtlDeadLetters  = "syrep_ctl_dead_letters_total"
	CtlResyncs      = "syrep_ctl_resyncs_total"
	CtlEpoch        = "syrep_ctl_epoch"
	CtlInboxDepth   = "syrep_ctl_inbox_depth"
	CtlEventLatency = "syrep_ctl_event_latency_seconds"
	CtlDupSkips     = "syrep_ctl_duplicate_push_skips_total"

	// Write-ahead journal (internal/journal) and controller recovery.
	// Append/sync/rotation/snapshot counters size the write path;
	// recovered-records and torn-tails are the replay-side story a crash
	// postmortem reads first.
	JournalAppends          = "syrep_journal_appends_total"
	JournalSyncs            = "syrep_journal_syncs_total"
	JournalRotations        = "syrep_journal_rotations_total"
	JournalSnapshots        = "syrep_journal_snapshots_total"
	JournalCompactedFiles   = "syrep_journal_compacted_files_total"
	JournalRecoveredRecords = "syrep_journal_recovered_records_total"
	JournalTornTails        = "syrep_journal_torn_tail_total"
	JournalSnapshotsLoaded  = "syrep_journal_snapshots_loaded_total"
	JournalBadSnapshots     = "syrep_journal_bad_snapshots_total"

	// All-destinations batch synthesis (resilience.SynthesizeAll and the
	// /v1/synthesize-all endpoint). Runs counts batches; Dests counts
	// per-destination completions split into resilient/degraded/failed;
	// CacheHits and Dedups count destinations served from the cross-request
	// cache; Inflight gauges destinations currently being solved.
	BatchRuns      = "syrep_batch_runs_total"
	BatchDests     = "syrep_batch_dests_total"
	BatchResilient = "syrep_batch_resilient_total"
	BatchDegraded  = "syrep_batch_degraded_total"
	BatchFailed    = "syrep_batch_failed_total"
	BatchCacheHits = "syrep_batch_cache_hits_total"
	BatchDedups    = "syrep_batch_dedups_total"
	BatchInflight  = "syrep_batch_inflight"
)

// SpanTotal is the span name of the Synthesize/Repair entry points; stage
// spans nest inside it, so summing stage durations never exceeds the total.
const SpanTotal = "total"

// Counter is a monotonically increasing, goroutine-safe counter. The zero
// value is ready to use. A nil *Counter is a valid no-op target: hot paths
// hold *Counter taps that stay nil when no observer is attached, making the
// disabled path a single predictable nil check with zero allocations.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 for a nil receiver).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a goroutine-safe instantaneous value. The zero value is ready to
// use and a nil *Gauge is a valid no-op target, like Counter.
type Gauge struct{ v atomic.Int64 }

// Set stores n. Safe on a nil receiver (no-op).
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// SetMax raises the gauge to n when n exceeds the current value — the
// high-water-mark update used for peak BDD node counts. Safe on a nil
// receiver (no-op).
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the current value (0 for a nil receiver).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultBuckets are the histogram upper bounds (seconds) used when a
// histogram is created without explicit bounds: exponential from 100µs to
// ~100s, the range spanning warm-path repairs (sub-millisecond on small
// topologies) to cold BDD synthesis under load. An implicit +Inf bucket
// always follows the last bound.
var DefaultBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// Histogram is a goroutine-safe latency histogram with fixed upper bounds.
// Like Counter and Gauge, a nil *Histogram is a valid no-op target and every
// observation is lock-free (one atomic add per bucket, sum, and count), so
// hot paths hold a tap unconditionally.
type Histogram struct {
	bounds []float64 // sorted upper bounds in seconds; +Inf implicit
	counts []atomic.Int64
	sum    atomic.Int64 // summed observations in nanoseconds
	count  atomic.Int64
}

// NewHistogram builds a histogram with the given upper bounds in seconds
// (DefaultBuckets when none are given). Bounds must be sorted ascending;
// the +Inf overflow bucket is implicit.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultBuckets
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one duration. Safe on a nil receiver (no-op).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	sec := d.Seconds()
	i := 0
	for i < len(h.bounds) && sec > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
}

// Count returns the number of observations (0 for a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Stat copies the histogram into its snapshot form (zero value for a nil
// receiver).
func (h *Histogram) Stat() HistogramStat {
	if h == nil {
		return HistogramStat{}
	}
	st := HistogramStat{
		Bounds:   append([]float64(nil), h.bounds...),
		Counts:   make([]int64, len(h.counts)),
		SumNanos: h.sum.Load(),
		Count:    h.count.Load(),
	}
	for i := range h.counts {
		st.Counts[i] = h.counts[i].Load()
	}
	return st
}

// HistogramStat is the snapshot form of a Histogram: cumulative-free bucket
// counts aligned with Bounds (Counts has one extra element, the +Inf
// bucket), plus the observation sum and count.
type HistogramStat struct {
	Bounds   []float64 `json:"bounds"`
	Counts   []int64   `json:"counts"`
	SumNanos int64     `json:"sumNanos"`
	Count    int64     `json:"count"`
}

// Quantile returns an upper bound on the q-quantile (0 < q ≤ 1) of the
// recorded observations: the smallest bucket bound at which the cumulative
// count reaches q·Count. It returns +Inf when the quantile lands in the
// overflow bucket and 0 when the histogram is empty — the resolution an
// SLO check needs ("p99 under 50ms") without storing raw samples.
func (s HistogramStat) Quantile(q float64) float64 {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	target := int64(q * float64(s.Count))
	if float64(target) < q*float64(s.Count) {
		target++
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// Span is one completed stage interval.
type Span struct {
	// Name is the stage name (a resilience.Stage string, or SpanTotal).
	Name string
	// Start and End bound the interval in wall-clock time.
	Start, End time.Time
}

// Duration returns the span's wall time.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Sink receives completed spans as they end. Implementations must be safe
// for concurrent use; they are called synchronously from the instrumented
// goroutine, so they should be fast.
type Sink interface {
	Span(Span)
}

// BDDCounters are the taps the BDD engine registers (bdd.Manager.Observe):
// node allocations and peak, hash-consing traffic, apply-cache hit rate,
// garbage collection, and reordering passes.
type BDDCounters struct {
	MkCalls        *Counter
	NodesAllocated *Counter
	CacheHits      *Counter
	CacheMisses    *Counter
	GCRuns         *Counter
	NodesFreed     *Counter
	Reorders       *Counter
	PeakNodes      *Gauge
}

// VerifyCounters are the taps the verification backends register: scenarios
// examined, traces followed, failing deliveries reported, and (parallel
// mode only) deliveries buffered by workers before the ordered merge. The
// backend-routing taps tick in verify.Router (which backend served each
// check, and fast-path fallbacks to the oracle) and in the poly checker
// (DFS states visited).
type VerifyCounters struct {
	Scenarios *Counter
	Traces    *Counter
	Failing   *Counter
	Collected *Counter

	BackendBrute *Counter
	BackendPoly  *Counter
	PolyFallback *Counter
	PolyVisits   *Counter
}

// RepairCounters are the taps the repair engine registers: BDD solve
// iterations (one per attempted hole set) and holes punched across them.
type RepairCounters struct {
	Iterations   *Counter
	HolesPunched *Counter
}

// stageAgg accumulates the per-stage span aggregate.
type stageAgg struct {
	count int64
	nanos int64
}

// Observer owns a run's counters, gauges, and stage aggregates, and fans
// completed spans out to an optional Sink. All methods are safe on a nil
// *Observer, returning nil taps and no-op closures, so an unobserved run
// costs only nil checks.
type Observer struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	stages     map[string]*stageAgg
	sink       Sink

	bddC    *BDDCounters
	verifyC *VerifyCounters
	repairC *RepairCounters
}

// New returns an Observer forwarding spans to sink (which may be nil).
func New(sink Sink) *Observer {
	return &Observer{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		stages:     make(map[string]*stageAgg),
		sink:       sink,
	}
}

// Counter returns the named counter, creating it on first use. A nil
// Observer returns a nil (no-op) counter.
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.counterLocked(name)
}

func (o *Observer) counterLocked(name string) *Counter {
	c, ok := o.counters[name]
	if !ok {
		c = &Counter{}
		o.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil Observer
// returns a nil (no-op) gauge.
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.gaugeLocked(name)
}

func (o *Observer) gaugeLocked(name string) *Gauge {
	g, ok := o.gauges[name]
	if !ok {
		g = &Gauge{}
		o.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// (DefaultBuckets when none) on first use; later calls return the existing
// histogram regardless of bounds. A nil Observer returns a nil (no-op)
// histogram.
func (o *Observer) Histogram(name string, bounds ...float64) *Histogram {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	h, ok := o.histograms[name]
	if !ok {
		h = NewHistogram(bounds...)
		o.histograms[name] = h
	}
	return h
}

// BDD returns the BDD counter bundle under the canonical names. A nil
// Observer returns nil, which every consumer accepts as "unobserved".
func (o *Observer) BDD() *BDDCounters {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.bddC == nil {
		o.bddC = &BDDCounters{
			MkCalls:        o.counterLocked(BDDMkCalls),
			NodesAllocated: o.counterLocked(BDDNodesAllocated),
			CacheHits:      o.counterLocked(BDDCacheHits),
			CacheMisses:    o.counterLocked(BDDCacheMisses),
			GCRuns:         o.counterLocked(BDDGCRuns),
			NodesFreed:     o.counterLocked(BDDNodesFreed),
			Reorders:       o.counterLocked(BDDReorders),
			PeakNodes:      o.gaugeLocked(BDDPeakNodes),
		}
	}
	return o.bddC
}

// Verify returns the verifier counter bundle under the canonical names. A
// nil Observer returns nil.
func (o *Observer) Verify() *VerifyCounters {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.verifyC == nil {
		o.verifyC = &VerifyCounters{
			Scenarios: o.counterLocked(VerifyScenarios),
			Traces:    o.counterLocked(VerifyTraces),
			Failing:   o.counterLocked(VerifyFailing),
			Collected: o.counterLocked(VerifyCollected),

			BackendBrute: o.counterLocked(VerifyBackendBrute),
			BackendPoly:  o.counterLocked(VerifyBackendPoly),
			PolyFallback: o.counterLocked(VerifyPolyFallback),
			PolyVisits:   o.counterLocked(VerifyPolyVisits),
		}
	}
	return o.verifyC
}

// Repair returns the repair counter bundle under the canonical names. A nil
// Observer returns nil.
func (o *Observer) Repair() *RepairCounters {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.repairC == nil {
		o.repairC = &RepairCounters{
			Iterations:   o.counterLocked(RepairIterations),
			HolesPunched: o.counterLocked(RepairHolesPunched),
		}
	}
	return o.repairC
}

var nop = func() {}

// StartStage opens a span named name and tags the current goroutine (and
// any goroutines it spawns, e.g. parallel verify workers) with the
// {StageLabel: name} pprof label. The returned context carries the label
// set; pass it to the stage's work. The returned func ends the span,
// restores the previous goroutine labels, and forwards the span to the
// sink. A nil Observer returns ctx unchanged and a no-op func.
func (o *Observer) StartStage(ctx context.Context, name string) (context.Context, func()) {
	if o == nil {
		return ctx, nop
	}
	start := time.Now()
	lctx := pprof.WithLabels(ctx, pprof.Labels(StageLabel, name))
	pprof.SetGoroutineLabels(lctx)
	return lctx, func() {
		pprof.SetGoroutineLabels(ctx)
		o.RecordSpan(Span{Name: name, Start: start, End: time.Now()})
	}
}

// RecordSpan folds a completed span into the per-stage aggregate and
// forwards it to the sink. Exposed so tests and external harnesses can
// inject spans with fixed timestamps. Safe on a nil Observer (no-op).
func (o *Observer) RecordSpan(s Span) {
	if o == nil {
		return
	}
	sink := func() Sink {
		o.mu.Lock()
		defer o.mu.Unlock()
		agg, ok := o.stages[s.Name]
		if !ok {
			agg = &stageAgg{}
			o.stages[s.Name] = agg
		}
		agg.count++
		agg.nanos += int64(s.Duration())
		return o.sink
	}()
	// The sink call stays outside the critical section: sinks are
	// caller-supplied and may block.
	if sink != nil {
		sink.Span(s)
	}
}

// StageStat is the aggregate of all spans sharing a name.
type StageStat struct {
	// Count is the number of completed spans.
	Count int64 `json:"count"`
	// Nanos is the summed wall time in nanoseconds.
	Nanos int64 `json:"nanos"`
}

// Duration returns the summed wall time.
func (s StageStat) Duration() time.Duration { return time.Duration(s.Nanos) }

// Snapshot is a point-in-time copy of every counter, gauge, and stage
// aggregate. It is the unit of export: WriteJSON and WritePrometheus render
// it, and benchmark results embed it per run.
type Snapshot struct {
	Counters map[string]int64 `json:"counters"`
	Gauges   map[string]int64 `json:"gauges"`
	// Histograms is omitted from JSON when no histogram was ever created,
	// so pre-histogram consumers of the export schema see unchanged output.
	Histograms map[string]HistogramStat `json:"histograms,omitempty"`
	Stages     map[string]StageStat     `json:"stages"`
}

// Snapshot copies the current state. Counters touched concurrently during
// the copy land in either the old or new value — each counter is read
// atomically. A nil Observer returns an empty (but non-nil-mapped)
// snapshot.
func (o *Observer) Snapshot() Snapshot {
	snap := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Stages:   map[string]StageStat{},
	}
	if o == nil {
		return snap
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	for name, c := range o.counters {
		snap.Counters[name] = c.Load()
	}
	for name, g := range o.gauges {
		snap.Gauges[name] = g.Load()
	}
	if len(o.histograms) > 0 {
		snap.Histograms = make(map[string]HistogramStat, len(o.histograms))
		for name, h := range o.histograms {
			snap.Histograms[name] = h.Stat()
		}
	}
	for name, agg := range o.stages {
		snap.Stages[name] = StageStat{Count: agg.count, Nanos: agg.nanos}
	}
	return snap
}

// Counter returns a counter's snapshotted value (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns a gauge's snapshotted value (0 when absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Histogram returns a histogram's snapshotted stat (zero value when absent).
func (s Snapshot) Histogram(name string) HistogramStat { return s.Histograms[name] }

// StageDuration returns the summed wall time of a stage's spans (0 when the
// stage never ran).
func (s Snapshot) StageDuration(name string) time.Duration {
	return s.Stages[name].Duration()
}
