package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"syrep/internal/obs"
)

var update = flag.Bool("update", false, "rewrite the export golden files")

// goldenObserver builds a fully deterministic observer: fixed counter
// values, a fixed gauge, and spans with hand-picked timestamps.
func goldenObserver() *obs.Observer {
	o := obs.New(nil)
	o.BDD().MkCalls.Add(1234)
	o.BDD().NodesAllocated.Add(567)
	o.BDD().CacheHits.Add(890)
	o.BDD().CacheMisses.Add(345)
	o.BDD().GCRuns.Add(3)
	o.BDD().NodesFreed.Add(120)
	o.BDD().Reorders.Add(1)
	o.BDD().PeakNodes.SetMax(4096)
	o.Verify().Scenarios.Add(29)
	o.Verify().Traces.Add(174)
	o.Verify().Failing.Add(3)
	o.Verify().Collected.Add(3)
	o.Verify().BackendBrute.Add(2)
	o.Verify().BackendPoly.Add(5)
	o.Verify().PolyFallback.Add(1)
	o.Verify().PolyVisits.Add(611)
	o.Repair().Iterations.Add(2)
	o.Repair().HolesPunched.Add(7)
	o.Counter(obs.CtlDupSkips).Add(4)
	o.Counter(obs.JournalAppends).Add(321)
	o.Counter(obs.JournalSyncs).Add(107)
	o.Counter(obs.JournalRotations).Add(2)
	o.Counter(obs.JournalSnapshots).Add(6)
	o.Counter(obs.JournalCompactedFiles).Add(9)
	o.Counter(obs.JournalRecoveredRecords).Add(58)
	o.Counter(obs.JournalTornTails).Add(1)
	o.Counter(obs.JournalSnapshotsLoaded).Add(1)
	o.Counter(obs.JournalBadSnapshots).Add(1)
	h := o.Histogram("syrep_ctl_event_latency_seconds", 0.001, 0.01, 0.1, 1)
	h.Observe(500 * time.Microsecond)
	h.Observe(500 * time.Microsecond)
	h.Observe(42 * time.Millisecond)
	h.Observe(3 * time.Second)
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	o.RecordSpan(obs.Span{Name: "verify", Start: base, End: base.Add(1500 * time.Microsecond)})
	o.RecordSpan(obs.Span{Name: "repair", Start: base, End: base.Add(20 * time.Millisecond)})
	o.RecordSpan(obs.Span{Name: "repair", Start: base, End: base.Add(5 * time.Millisecond)})
	o.RecordSpan(obs.Span{Name: obs.SpanTotal, Start: base, End: base.Add(30 * time.Millisecond)})
	return o
}

// TestExportGolden locks the export schema — metric names, label shapes, and
// formatting — for both renderers. A diff here means the schema changed and
// every consumer (CI artifact scrapers, dashboards) must be told.
func TestExportGolden(t *testing.T) {
	snap := goldenObserver().Snapshot()
	for _, tc := range []struct {
		file  string
		write func(*bytes.Buffer) error
	}{
		{"export.json", func(b *bytes.Buffer) error { return snap.WriteJSON(b) }},
		{"export.prom", func(b *bytes.Buffer) error { return snap.WritePrometheus(b) }},
	} {
		t.Run(tc.file, func(t *testing.T) {
			var got bytes.Buffer
			if err := tc.write(&got); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.file)
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run 'go test ./internal/obs -run Golden -update' to regenerate)", err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Errorf("%s drifted from golden file.\n-- got --\n%s\n-- want --\n%s",
					tc.file, got.Bytes(), want)
			}
		})
	}
}

// TestExportDeterminism: two renders of the same snapshot are byte-identical
// (map iteration order must not leak into the output).
func TestExportDeterminism(t *testing.T) {
	snap := goldenObserver().Snapshot()
	var a, b bytes.Buffer
	if err := snap.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := snap.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("Prometheus export is not deterministic")
	}
}

func TestWriteMetricsFormatSwitch(t *testing.T) {
	snap := goldenObserver().Snapshot()
	var j, p bytes.Buffer
	if err := snap.WriteMetrics(&j, "metrics.json"); err != nil {
		t.Fatal(err)
	}
	if err := snap.WriteMetrics(&p, "metrics.prom"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(j.String(), "{") {
		t.Errorf(".json path did not produce JSON: %q", j.String()[:20])
	}
	if !strings.HasPrefix(p.String(), "# TYPE ") {
		t.Errorf("non-json path did not produce Prometheus text: %q", p.String()[:20])
	}
	var round obs.Snapshot
	if err := json.Unmarshal(j.Bytes(), &round); err != nil {
		t.Fatalf("JSON export does not round-trip: %v", err)
	}
	if round.Counters[obs.BDDMkCalls] != 1234 {
		t.Errorf("round-tripped mk calls = %d, want 1234", round.Counters[obs.BDDMkCalls])
	}
}

func TestRecorderWriteJSON(t *testing.T) {
	rec := &obs.Recorder{}
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	rec.Span(obs.Span{Name: "reduce", Start: base, End: base.Add(time.Millisecond)})
	rec.Span(obs.Span{Name: "verify", Start: base, End: base.Add(2 * time.Millisecond)})
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var rows []struct {
		Name       string `json:"name"`
		DurationNS int64  `json:"duration_ns"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Name != "reduce" || rows[1].Name != "verify" {
		t.Fatalf("rows = %+v, want reduce then verify", rows)
	}
	if rows[0].DurationNS != int64(time.Millisecond) {
		t.Errorf("duration = %d, want %d", rows[0].DurationNS, int64(time.Millisecond))
	}
}
