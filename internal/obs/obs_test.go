package obs_test

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sync"
	"testing"
	"time"

	"syrep/internal/obs"
)

// TestNilTapsAreNoOps: every Counter/Gauge method must be callable through a
// nil pointer — that is the contract the instrumented hot paths rely on.
func TestNilTapsAreNoOps(t *testing.T) {
	var c *obs.Counter
	c.Add(5)
	c.Inc()
	if c.Load() != 0 {
		t.Errorf("nil counter Load = %d, want 0", c.Load())
	}
	var g *obs.Gauge
	g.Set(7)
	g.SetMax(9)
	if g.Load() != 0 {
		t.Errorf("nil gauge Load = %d, want 0", g.Load())
	}
}

// TestNilFastPathAllocs locks in the acceptance criterion: the unobserved
// counter path (nil taps, nil Observer) performs zero allocations.
func TestNilFastPathAllocs(t *testing.T) {
	var c *obs.Counter
	var g *obs.Gauge
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(3)
		c.Inc()
		g.Set(1)
		g.SetMax(2)
	}); n != 0 {
		t.Errorf("nil tap fast path allocates %v per run, want 0", n)
	}
	var o *obs.Observer
	ctx := context.Background()
	if n := testing.AllocsPerRun(1000, func() {
		_, end := o.StartStage(ctx, "verify")
		end()
	}); n != 0 {
		t.Errorf("nil observer StartStage allocates %v per run, want 0", n)
	}
}

// TestAttachedCounterAllocs: even with an observer attached, the per-event
// cost is one atomic add — no allocation.
func TestAttachedCounterAllocs(t *testing.T) {
	o := obs.New(nil)
	c := o.Counter("x")
	g := o.Gauge("y")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.SetMax(4)
	}); n != 0 {
		t.Errorf("attached tap path allocates %v per run, want 0", n)
	}
}

func TestCounterAndGauge(t *testing.T) {
	o := obs.New(nil)
	c := o.Counter("c")
	c.Add(2)
	c.Inc()
	if c.Load() != 3 {
		t.Errorf("counter = %d, want 3", c.Load())
	}
	if o.Counter("c") != c {
		t.Error("Counter(name) must return the same instance")
	}
	g := o.Gauge("g")
	g.Set(10)
	g.SetMax(7) // lower: no effect
	if g.Load() != 10 {
		t.Errorf("gauge = %d, want 10 (SetMax must not lower)", g.Load())
	}
	g.SetMax(12)
	if g.Load() != 12 {
		t.Errorf("gauge = %d, want 12", g.Load())
	}
}

// TestBundlesUseCanonicalNames: the subsystem bundles alias the named
// counters, so exports see the same values the hot paths increment.
func TestBundlesUseCanonicalNames(t *testing.T) {
	o := obs.New(nil)
	if o.BDD() != o.BDD() {
		t.Error("BDD() must be stable")
	}
	o.BDD().MkCalls.Add(4)
	if got := o.Counter(obs.BDDMkCalls).Load(); got != 4 {
		t.Errorf("canonical counter = %d, want 4", got)
	}
	o.Verify().Scenarios.Inc()
	if got := o.Counter(obs.VerifyScenarios).Load(); got != 1 {
		t.Errorf("canonical verify counter = %d, want 1", got)
	}
	o.Repair().HolesPunched.Add(9)
	if got := o.Counter(obs.RepairHolesPunched).Load(); got != 9 {
		t.Errorf("canonical repair counter = %d, want 9", got)
	}
	o.BDD().PeakNodes.SetMax(33)
	if got := o.Gauge(obs.BDDPeakNodes).Load(); got != 33 {
		t.Errorf("canonical gauge = %d, want 33", got)
	}
}

// TestNilObserverBundles: a nil Observer hands out nil bundles, and the
// supervisor passes them straight into the subsystems.
func TestNilObserverBundles(t *testing.T) {
	var o *obs.Observer
	if o.BDD() != nil || o.Verify() != nil || o.Repair() != nil {
		t.Error("nil observer must return nil bundles")
	}
	if o.Counter("x") != nil || o.Gauge("y") != nil {
		t.Error("nil observer must return nil taps")
	}
	snap := o.Snapshot()
	if snap.Counters == nil || snap.Gauges == nil || snap.Stages == nil {
		t.Error("nil observer snapshot must have non-nil maps")
	}
	o.RecordSpan(obs.Span{Name: "x"})
}

func TestStartStageRecordsSpanAndLabels(t *testing.T) {
	rec := &obs.Recorder{}
	o := obs.New(rec)
	ctx, end := o.StartStage(context.Background(), "verify")
	if got, ok := pprof.Label(ctx, obs.StageLabel); !ok || got != "verify" {
		t.Errorf("stage label = %q (ok=%v), want %q", got, ok, "verify")
	}
	end()
	spans := rec.Spans()
	if len(spans) != 1 || spans[0].Name != "verify" {
		t.Fatalf("spans = %+v, want one %q span", spans, "verify")
	}
	if spans[0].End.Before(spans[0].Start) {
		t.Error("span ends before it starts")
	}
	snap := o.Snapshot()
	if st := snap.Stages["verify"]; st.Count != 1 || st.Nanos < 0 {
		t.Errorf("stage aggregate = %+v", st)
	}
}

func TestSnapshotAggregation(t *testing.T) {
	o := obs.New(nil)
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	o.RecordSpan(obs.Span{Name: "repair", Start: base, End: base.Add(10 * time.Millisecond)})
	o.RecordSpan(obs.Span{Name: "repair", Start: base, End: base.Add(5 * time.Millisecond)})
	snap := o.Snapshot()
	if st := snap.Stages["repair"]; st.Count != 2 || st.Duration() != 15*time.Millisecond {
		t.Errorf("aggregate = %+v, want count 2 / 15ms", st)
	}
	if d := snap.StageDuration("repair"); d != 15*time.Millisecond {
		t.Errorf("StageDuration = %v, want 15ms", d)
	}
	if d := snap.StageDuration("never-ran"); d != 0 {
		t.Errorf("missing stage duration = %v, want 0", d)
	}
}

// TestHammer drives every Observer entry point from GOMAXPROCS goroutines.
// Run under -race (the Makefile's obs target does) it doubles as the data-race
// proof; the final counts check that no increment was lost.
func TestHammer(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 2000
	rec := &obs.Recorder{}
	o := obs.New(rec)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			bdd := o.BDD()
			for i := 0; i < perWorker; i++ {
				bdd.MkCalls.Inc()
				o.Counter("shared").Add(1)
				o.Gauge("peak").SetMax(int64(w*perWorker + i))
				if i%100 == 0 {
					_, end := o.StartStage(context.Background(), "verify")
					end()
					_ = o.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	snap := o.Snapshot()
	want := int64(workers * perWorker)
	if got := snap.Counter(obs.BDDMkCalls); got != want {
		t.Errorf("mk calls = %d, want %d", got, want)
	}
	if got := snap.Counter("shared"); got != want {
		t.Errorf("shared = %d, want %d", got, want)
	}
	if got := snap.Gauge("peak"); got != int64(workers*perWorker-1) {
		t.Errorf("peak = %d, want %d", got, workers*perWorker-1)
	}
	if got := snap.Stages["verify"].Count; got != int64(workers*(perWorker/100)) {
		t.Errorf("verify spans = %d, want %d", got, workers*(perWorker/100))
	}
}
