package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file renders snapshots and span streams for humans and scrapers:
// an expvar-style JSON dump, a Prometheus text exposition, and the
// in-memory span Recorder behind --trace-out. Output is byte-deterministic
// for a given snapshot (keys sorted), which the golden-file test locks in.

// WriteJSON emits the snapshot as an indented JSON document. Map keys are
// sorted by encoding/json, so the output is deterministic.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus emits the snapshot in the Prometheus text exposition
// format: every counter and gauge under its canonical name, and the stage
// aggregates as syrep_stage_runs_total{stage="..."} and
// syrep_stage_seconds_sum{stage="..."}.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, s.Gauges[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := writeHistogram(w, name, s.Histograms[name]); err != nil {
			return err
		}
	}

	if len(s.Stages) == 0 {
		return nil
	}
	names = names[:0]
	for name := range s.Stages {
		names = append(names, name)
	}
	sort.Strings(names)
	if _, err := fmt.Fprintf(w, "# TYPE syrep_stage_runs_total counter\n"); err != nil {
		return err
	}
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "syrep_stage_runs_total{stage=%q} %d\n", name, s.Stages[name].Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE syrep_stage_seconds_sum counter\n"); err != nil {
		return err
	}
	for _, name := range names {
		sec := float64(s.Stages[name].Nanos) / float64(time.Second)
		if _, err := fmt.Fprintf(w, "syrep_stage_seconds_sum{stage=%q} %.9f\n", name, sec); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram in the Prometheus exposition shape:
// cumulative _bucket series keyed by upper bound, then _sum and _count.
func writeHistogram(w io.Writer, name string, h HistogramStat) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum int64
	for i, c := range h.Counts {
		cum += c
		le := "+Inf"
		if i < len(h.Bounds) {
			le = strconv.FormatFloat(h.Bounds[i], 'g', -1, 64)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	sec := float64(h.SumNanos) / float64(time.Second)
	if _, err := fmt.Fprintf(w, "%s_sum %.9f\n%s_count %d\n", name, sec, name, h.Count); err != nil {
		return err
	}
	return nil
}

// WriteMetrics renders the snapshot to w, choosing the format from path:
// JSON when it ends in ".json", Prometheus text otherwise. The CLIs route
// --metrics-out through this single switch.
func (s Snapshot) WriteMetrics(w io.Writer, path string) error {
	if strings.HasSuffix(path, ".json") {
		return s.WriteJSON(w)
	}
	return s.WritePrometheus(w)
}

// Recorder is an in-memory Sink retaining every span in completion order.
// It backs --trace-out and span assertions in tests.
type Recorder struct {
	mu    sync.Mutex
	spans []Span
}

// Span implements Sink.
func (r *Recorder) Span(s Span) {
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
}

// Spans returns a copy of the recorded spans in completion order.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// spanJSON is the --trace-out wire shape of one span.
type spanJSON struct {
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	End        time.Time `json:"end"`
	DurationNS int64     `json:"duration_ns"`
}

// WriteJSON emits the recorded spans as an indented JSON array in
// completion order.
func (r *Recorder) WriteJSON(w io.Writer) error {
	spans := r.Spans()
	out := make([]spanJSON, len(spans))
	for i, s := range spans {
		out[i] = spanJSON{Name: s.Name, Start: s.Start, End: s.End, DurationNS: int64(s.Duration())}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
